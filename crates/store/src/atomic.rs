//! Crash-safe file replacement: temp file + fsync + atomic rename.
//!
//! Every durable artifact the store produces (`.tlpg` graphs, partition
//! segments, manifests, checkpoints) is written with [`atomic_write`]: the
//! payload is emitted to a sibling temp file, synced to stable storage, and
//! renamed over the final path in one step. A crash at any point leaves
//! either the previous file (or nothing) at the final path — never a torn
//! write. Stray temp files from crashed writers are ignored by readers and
//! overwritten by the next successful write.

use crate::faults::FaultFile;
use crate::StoreError;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Extension appended to the final name while a write is in flight.
const TMP_SUFFIX: &str = ".tmp";

/// Returns the sibling temp path writes to `path` stage through.
pub(crate) fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(TMP_SUFFIX);
    path.with_file_name(name)
}

/// Writes a file at `path` atomically.
///
/// `emit` receives a buffered, fault-injectable writer for the payload.
/// After it returns the data is flushed and fsynced, then the temp file is
/// renamed onto `path`. On any error the temp file is removed (best effort)
/// and `path` is left untouched.
///
/// # Errors
///
/// Returns [`StoreError::Io`] if creating, writing, syncing, or renaming
/// the temp file fails, and propagates errors from `emit`.
pub fn atomic_write<F>(path: &Path, emit: F) -> Result<(), StoreError>
where
    F: FnOnce(&mut BufWriter<FaultFile>) -> Result<(), StoreError>,
{
    let tmp = temp_path(path);
    let result = write_temp(&tmp, emit).and_then(|()| {
        std::fs::rename(&tmp, path).map_err(StoreError::Io)?;
        sync_parent_dir(path);
        Ok(())
    });
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn write_temp<F>(tmp: &Path, emit: F) -> Result<(), StoreError>
where
    F: FnOnce(&mut BufWriter<FaultFile>) -> Result<(), StoreError>,
{
    let file = FaultFile::create(tmp).map_err(StoreError::Io)?;
    let mut out = BufWriter::new(file);
    emit(&mut out)?;
    out.flush().map_err(StoreError::Io)?;
    out.get_ref().sync_all().map_err(StoreError::Io)?;
    Ok(())
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable. Failures are ignored: the data file is already
/// synced, and directory sync is not supported on all platforms.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::faults::{self, FaultKind, FaultSchedule};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tlp-atomic-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn successful_write_lands_and_removes_temp() {
        let _guard = faults::test_lock();
        let dir = temp_dir("ok");
        let path = dir.join("data");
        atomic_write(&path, |out| {
            out.write_all(b"payload").map_err(StoreError::Io)
        })
        .unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
        assert!(!temp_path(&path).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_preserves_previous_file() {
        let _guard = faults::test_lock();
        let dir = temp_dir("keep");
        let path = dir.join("data");
        std::fs::write(&path, b"old").unwrap();
        faults::arm(FaultSchedule {
            at_op: 1, // create = op 0; first write fails
            kind: FaultKind::Crash,
            seed: 0,
        });
        let err = atomic_write(&path, |out| {
            out.write_all(b"new-but-doomed").map_err(StoreError::Io)
        });
        faults::disarm();
        assert!(err.is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"old");
        assert!(!temp_path(&path).exists(), "temp file must be cleaned up");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_during_sync_leaves_target_absent() {
        let _guard = faults::test_lock();
        let dir = temp_dir("nospc");
        let path = dir.join("data");
        faults::arm(FaultSchedule {
            at_op: 2, // create, write, then sync fails
            kind: FaultKind::Enospc,
            seed: 0,
        });
        let err = atomic_write(&path, |out| out.write_all(b"x").map_err(StoreError::Io));
        faults::disarm();
        assert!(err.is_err());
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
