//! Writing `.tlpg` binary graph files (v1 and v2).

use crate::format::{
    FormatVersion, Header, SectionFrame, SectionHasher, SourceStamp, CHUNK_EDGES,
    SECTION_FRAME_LEN, TAG_ADJ_EDGE, TAG_ADJ_VERTEX, TAG_DEGREES, TAG_EDGES, TAG_OFFSETS,
    TAG_ORIGINAL_IDS,
};
use crate::StoreError;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use tlp_graph::GraphView;

/// Options for [`write_graph`].
#[derive(Clone, Debug, Default)]
pub struct WriteOptions {
    /// Original vertex ids to persist (`original_ids[v]` = id of `v` in the
    /// text source), written as an `OIDS` section when present.
    pub original_ids: Option<Vec<u64>>,
    /// Provenance stamp of the converted text source (for cache staleness
    /// checks); defaults to [`SourceStamp::UNKNOWN`].
    pub source: Option<SourceStamp>,
    /// On-disk layout to write; defaults to [`FormatVersion::V2`].
    pub version: FormatVersion,
}

/// Writes `graph` to `path` in the versioned binary format.
///
/// Accepts `&CsrGraph` or any [`GraphView`]. By default the v2 layout is
/// written: the CSR offset/adjacency arrays are persisted verbatim
/// (8-byte-aligned, individually checksummed), so a later open is one bulk
/// read with no per-edge decode and no CSR rebuild. Pass
/// [`FormatVersion::V1`] in the options to emit the legacy degree+edge
/// layout.
///
/// All payloads are emitted in bounded-size chunks, so the writer's buffer
/// stays bounded regardless of graph size. Section checksums are computed
/// incrementally while writing; the section frames are back-patched once
/// the payload sizes are known.
///
/// The file is written crash-safely: the payload goes to a sibling temp
/// file that is fsynced and atomically renamed onto `path`, so an
/// interrupted write leaves the previous file (or nothing) in place,
/// never a torn `.tlpg`.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on any write failure.
pub fn write_graph<'a>(
    path: &Path,
    graph: impl Into<GraphView<'a>>,
    options: &WriteOptions,
) -> Result<(), StoreError> {
    let graph = graph.into();
    if let Some(ids) = &options.original_ids {
        if ids.len() != graph.num_vertices() {
            return Err(StoreError::Corrupt(format!(
                "original_ids has {} entries for {} vertices",
                ids.len(),
                graph.num_vertices()
            )));
        }
    }
    crate::atomic::atomic_write(path, |out| write_graph_payload(out, graph, options))
}

/// Emits the full `.tlpg` byte stream (header + framed sections) to `out`.
fn write_graph_payload<W: Write + Seek>(
    out: &mut BufWriter<W>,
    graph: GraphView<'_>,
    options: &WriteOptions,
) -> Result<(), StoreError> {
    let version = options.version.number();
    let header = Header {
        version,
        num_vertices: graph.num_vertices() as u64,
        num_edges: graph.num_edges() as u64,
        has_original_ids: options.original_ids.is_some(),
        source: options.source.unwrap_or(SourceStamp::UNKNOWN),
    };
    out.write_all(&header.encode()).map_err(StoreError::Io)?;

    match options.version {
        FormatVersion::V1 => {
            // DEGS: one u32 per vertex, chunked.
            write_section(out, version, TAG_DEGREES, |sink| {
                let mut buf = Vec::with_capacity(4 * CHUNK_EDGES.min(graph.num_vertices().max(1)));
                for v in graph.vertices() {
                    buf.extend_from_slice(&(graph.degree(v) as u32).to_le_bytes());
                    if buf.len() >= 4 * CHUNK_EDGES {
                        sink.write(&buf)?;
                        buf.clear();
                    }
                }
                sink.write(&buf)
            })?;
        }
        FormatVersion::V2 => {
            // OFFS: the CSR offset array verbatim, (n+1) × u64.
            write_section(out, version, TAG_OFFSETS, |sink| {
                write_u64s(sink, graph.offsets().iter().copied())
            })?;
            // ADJV / ADJE: the adjacency arrays verbatim, 2m × u32 each.
            write_section(out, version, TAG_ADJ_VERTEX, |sink| {
                write_u32s(sink, graph.adj_vertex().iter().copied())
            })?;
            write_section(out, version, TAG_ADJ_EDGE, |sink| {
                write_u32s(sink, graph.adj_edge().iter().copied())
            })?;
        }
    }

    // EDGE: canonical sorted (u, v) pairs, chunked — identical payload in
    // both versions, which keeps sequential edge streaming format-agnostic.
    write_section(out, version, TAG_EDGES, |sink| {
        let mut buf = Vec::with_capacity(8 * CHUNK_EDGES.min(graph.num_edges().max(1)));
        for e in graph.edge_iter() {
            buf.extend_from_slice(&e.source().to_le_bytes());
            buf.extend_from_slice(&e.target().to_le_bytes());
            if buf.len() >= 8 * CHUNK_EDGES {
                sink.write(&buf)?;
                buf.clear();
            }
        }
        sink.write(&buf)
    })?;

    if let Some(ids) = &options.original_ids {
        write_section(out, version, TAG_ORIGINAL_IDS, |sink| {
            write_u64s(sink, ids.iter().copied())
        })?;
    }

    out.flush().map_err(StoreError::Io)?;
    Ok(())
}

fn write_u32s<W: Write + Seek>(
    sink: &mut SectionSink<'_, BufWriter<W>>,
    values: impl Iterator<Item = u32>,
) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(4 * CHUNK_EDGES);
    for x in values {
        buf.extend_from_slice(&x.to_le_bytes());
        if buf.len() >= 4 * CHUNK_EDGES {
            sink.write(&buf)?;
            buf.clear();
        }
    }
    sink.write(&buf)
}

fn write_u64s<W: Write + Seek>(
    sink: &mut SectionSink<'_, BufWriter<W>>,
    values: impl Iterator<Item = u64>,
) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(8 * CHUNK_EDGES);
    for x in values {
        buf.extend_from_slice(&x.to_le_bytes());
        if buf.len() >= 8 * CHUNK_EDGES {
            sink.write(&buf)?;
            buf.clear();
        }
    }
    sink.write(&buf)
}

/// Incrementally checksummed section payload sink.
struct SectionSink<'a, W: Write + Seek> {
    out: &'a mut W,
    checksum: SectionHasher,
    written: u64,
}

impl<W: Write + Seek> SectionSink<'_, W> {
    fn write(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.checksum.update(bytes);
        self.written += bytes.len() as u64;
        self.out.write_all(bytes).map_err(StoreError::Io)
    }
}

/// Writes one framed section: reserves the frame, streams the payload
/// through a checksumming sink, then back-patches the frame with the final
/// length and checksum.
fn write_section<W, F>(
    out: &mut BufWriter<W>,
    version: u32,
    tag: u32,
    emit: F,
) -> Result<(), StoreError>
where
    W: Write + Seek,
    F: FnOnce(&mut SectionSink<'_, BufWriter<W>>) -> Result<(), StoreError>,
{
    let frame_pos = out.stream_position().map_err(StoreError::Io)?;
    out.write_all(&[0u8; SECTION_FRAME_LEN])
        .map_err(StoreError::Io)?;
    let mut sink = SectionSink {
        out,
        checksum: SectionHasher::for_version(version),
        written: 0,
    };
    emit(&mut sink)?;
    let frame = SectionFrame {
        tag,
        payload_len: sink.written,
        checksum: sink.checksum.value(),
    };
    let end = out.stream_position().map_err(StoreError::Io)?;
    out.seek(SeekFrom::Start(frame_pos))
        .map_err(StoreError::Io)?;
    out.write_all(&frame.encode()).map_err(StoreError::Io)?;
    out.seek(SeekFrom::Start(end)).map_err(StoreError::Io)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tlp_graph::GraphBuilder;

    #[test]
    fn rejects_mismatched_original_ids() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        let dir = std::env::temp_dir().join(format!("tlp-store-w-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.tlpg");
        let options = WriteOptions {
            original_ids: Some(vec![1, 2, 3]), // graph has 2 vertices
            ..WriteOptions::default()
        };
        assert!(matches!(
            write_graph(&path, &g, &options),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_payloads_are_aligned_multiples_of_eight() {
        use crate::format::{HEADER_LEN, SECTION_FRAME_LEN};
        let g = GraphBuilder::new()
            .reserve_vertices(5) // odd n exercises the offsets length
            .add_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)])
            .build();
        let dir = std::env::temp_dir().join(format!("tlp-store-align-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tlpg");
        write_graph(&path, &g, &WriteOptions::default()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Walk the frames and assert every payload starts 8-byte-aligned.
        let mut pos = HEADER_LEN;
        let mut seen = Vec::new();
        while pos + SECTION_FRAME_LEN <= bytes.len() {
            let tag = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let len =
                u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap()) as usize;
            let payload_pos = pos + SECTION_FRAME_LEN;
            assert_eq!(payload_pos % 8, 0, "section {tag:#x} payload misaligned");
            assert_eq!(len % 8, 0, "section {tag:#x} payload length not 8-aligned");
            seen.push(tag);
            pos = payload_pos + len;
        }
        assert_eq!(pos, bytes.len());
        assert_eq!(
            seen,
            vec![TAG_OFFSETS, TAG_ADJ_VERTEX, TAG_ADJ_EDGE, TAG_EDGES]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
