//! Writing `.tlpg` binary graph files.

use crate::format::{
    Checksum, Header, SectionFrame, SourceStamp, CHUNK_EDGES, SECTION_FRAME_LEN, TAG_DEGREES,
    TAG_EDGES, TAG_ORIGINAL_IDS,
};
use crate::StoreError;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use tlp_graph::CsrGraph;

/// Options for [`write_graph`].
#[derive(Clone, Debug, Default)]
pub struct WriteOptions {
    /// Original vertex ids to persist (`original_ids[v]` = id of `v` in the
    /// text source), written as an `OIDS` section when present.
    pub original_ids: Option<Vec<u64>>,
    /// Provenance stamp of the converted text source (for cache staleness
    /// checks); defaults to [`SourceStamp::UNKNOWN`].
    pub source: Option<SourceStamp>,
}

/// Writes `graph` to `path` in the versioned binary format.
///
/// The edge table is emitted in canonical sorted order in chunks of
/// [`CHUNK_EDGES`], so the writer's buffer stays bounded regardless of
/// graph size. Section checksums are computed incrementally while writing;
/// the section frames are back-patched once the payload sizes are known
/// (they are known up front here, but streaming checksum values are not).
///
/// The file is written crash-safely: the payload goes to a sibling temp
/// file that is fsynced and atomically renamed onto `path`, so an
/// interrupted write leaves the previous file (or nothing) in place,
/// never a torn `.tlpg`.
///
/// # Errors
///
/// Returns [`StoreError::Io`] on any write failure.
pub fn write_graph(
    path: &Path,
    graph: &CsrGraph,
    options: &WriteOptions,
) -> Result<(), StoreError> {
    if let Some(ids) = &options.original_ids {
        if ids.len() != graph.num_vertices() {
            return Err(StoreError::Corrupt(format!(
                "original_ids has {} entries for {} vertices",
                ids.len(),
                graph.num_vertices()
            )));
        }
    }
    crate::atomic::atomic_write(path, |out| write_graph_payload(out, graph, options))
}

/// Emits the full `.tlpg` byte stream (header + framed sections) to `out`.
fn write_graph_payload<W: Write + Seek>(
    out: &mut BufWriter<W>,
    graph: &CsrGraph,
    options: &WriteOptions,
) -> Result<(), StoreError> {
    let header = Header {
        num_vertices: graph.num_vertices() as u64,
        num_edges: graph.num_edges() as u64,
        has_original_ids: options.original_ids.is_some(),
        source: options.source.unwrap_or(SourceStamp::UNKNOWN),
    };
    out.write_all(&header.encode()).map_err(StoreError::Io)?;

    // DEGS: one u32 per vertex, chunked.
    write_section(out, TAG_DEGREES, |sink| {
        let mut buf = Vec::with_capacity(4 * CHUNK_EDGES.min(graph.num_vertices().max(1)));
        for v in graph.vertices() {
            buf.extend_from_slice(&(graph.degree(v) as u32).to_le_bytes());
            if buf.len() >= 4 * CHUNK_EDGES {
                sink.write(&buf)?;
                buf.clear();
            }
        }
        sink.write(&buf)
    })?;

    // EDGE: canonical sorted (u, v) pairs, chunked.
    write_section(out, TAG_EDGES, |sink| {
        let mut buf = Vec::with_capacity(8 * CHUNK_EDGES.min(graph.num_edges().max(1)));
        for e in graph.edges() {
            buf.extend_from_slice(&e.source().to_le_bytes());
            buf.extend_from_slice(&e.target().to_le_bytes());
            if buf.len() >= 8 * CHUNK_EDGES {
                sink.write(&buf)?;
                buf.clear();
            }
        }
        sink.write(&buf)
    })?;

    if let Some(ids) = &options.original_ids {
        write_section(out, TAG_ORIGINAL_IDS, |sink| {
            let mut buf = Vec::with_capacity(8 * CHUNK_EDGES.min(ids.len().max(1)));
            for &id in ids {
                buf.extend_from_slice(&id.to_le_bytes());
                if buf.len() >= 8 * CHUNK_EDGES {
                    sink.write(&buf)?;
                    buf.clear();
                }
            }
            sink.write(&buf)
        })?;
    }

    out.flush().map_err(StoreError::Io)?;
    Ok(())
}

/// Incrementally checksummed section payload sink.
struct SectionSink<'a, W: Write + Seek> {
    out: &'a mut W,
    checksum: Checksum,
    written: u64,
}

impl<W: Write + Seek> SectionSink<'_, W> {
    fn write(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.checksum.update(bytes);
        self.written += bytes.len() as u64;
        self.out.write_all(bytes).map_err(StoreError::Io)
    }
}

/// Writes one framed section: reserves the frame, streams the payload
/// through a checksumming sink, then back-patches the frame with the final
/// length and checksum.
fn write_section<W, F>(out: &mut BufWriter<W>, tag: u32, emit: F) -> Result<(), StoreError>
where
    W: Write + Seek,
    F: FnOnce(&mut SectionSink<'_, BufWriter<W>>) -> Result<(), StoreError>,
{
    let frame_pos = out.stream_position().map_err(StoreError::Io)?;
    out.write_all(&[0u8; SECTION_FRAME_LEN])
        .map_err(StoreError::Io)?;
    let mut sink = SectionSink {
        out,
        checksum: Checksum::new(),
        written: 0,
    };
    emit(&mut sink)?;
    let frame = SectionFrame {
        tag,
        payload_len: sink.written,
        checksum: sink.checksum.value(),
    };
    let end = out.stream_position().map_err(StoreError::Io)?;
    out.seek(SeekFrom::Start(frame_pos))
        .map_err(StoreError::Io)?;
    out.write_all(&frame.encode()).map_err(StoreError::Io)?;
    out.seek(SeekFrom::Start(end)).map_err(StoreError::Io)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tlp_graph::GraphBuilder;

    #[test]
    fn rejects_mismatched_original_ids() {
        let g = GraphBuilder::new().add_edge(0, 1).build();
        let dir = std::env::temp_dir().join(format!("tlp-store-w-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.tlpg");
        let options = WriteOptions {
            original_ids: Some(vec![1, 2, 3]), // graph has 2 vertices
            source: None,
        };
        assert!(matches!(
            write_graph(&path, &g, &options),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
