//! On-disk persistence of engine checkpoints (`checkpoint.tlpc`).
//!
//! One fixed-layout little-endian binary file per checkpoint directory,
//! replaced atomically after every completed round:
//!
//! ```text
//! magic      8 bytes  "TLPCKPT\x01"
//! seed       u64
//! partitions u64
//! next_round u32      (+ 4 reserved bytes)
//! rng_state  4 x u64
//! vertices   u64
//! edges      u64      = m
//! assignment m x u32
//! allocated  ceil(m/8) bytes, bit e = edge e assigned (LSB-first)
//! checksum   u64      FNV-1a over everything above
//! ```
//!
//! The assignment array alone cannot distinguish "edge unassigned" from
//! "edge in partition 0", hence the separate allocated bitmap. Writes go
//! through [`crate::atomic_write`], so a crash mid-checkpoint leaves the
//! previous round's file; a torn or flipped file fails the trailing
//! checksum and surfaces as a typed [`StoreError`], never as a bogus
//! resume state.

use crate::atomic::atomic_write;
use crate::faults::FaultFile;
use crate::format::Checksum;
use crate::StoreError;
use std::io::{Read, Write};
use std::path::Path;
use tlp_core::EngineCheckpoint;

/// File name of the checkpoint inside a checkpoint directory.
pub const CHECKPOINT_NAME: &str = "checkpoint.tlpc";

/// Magic prefix of a checkpoint file.
const CHECKPOINT_MAGIC: [u8; 8] = *b"TLPCKPT\x01";

/// Fixed-size prefix before the assignment array.
const FIXED_LEN: usize = 8 + 8 + 8 + 4 + 4 + 32 + 8 + 8;

/// Serialized byte length of `ckpt`.
fn encoded_len(num_edges: usize) -> usize {
    FIXED_LEN + 4 * num_edges + num_edges.div_ceil(8) + 8
}

/// Writes `ckpt` to `dir/checkpoint.tlpc`, atomically replacing any
/// previous checkpoint.
///
/// # Errors
///
/// [`StoreError::Io`] on write failures (the previous checkpoint, if any,
/// survives them).
pub fn write_checkpoint(dir: &Path, ckpt: &EngineCheckpoint) -> Result<(), StoreError> {
    tlp_obs::counter("checkpoint.write", 1);
    std::fs::create_dir_all(dir).map_err(StoreError::Io)?;
    let mut bytes = Vec::with_capacity(encoded_len(ckpt.num_edges));
    bytes.extend_from_slice(&CHECKPOINT_MAGIC);
    bytes.extend_from_slice(&ckpt.seed.to_le_bytes());
    bytes.extend_from_slice(&(ckpt.num_partitions as u64).to_le_bytes());
    bytes.extend_from_slice(&ckpt.next_round.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 4]);
    for word in ckpt.rng_state {
        bytes.extend_from_slice(&word.to_le_bytes());
    }
    bytes.extend_from_slice(&(ckpt.num_vertices as u64).to_le_bytes());
    bytes.extend_from_slice(&(ckpt.num_edges as u64).to_le_bytes());
    for &pid in &ckpt.assignment {
        bytes.extend_from_slice(&pid.to_le_bytes());
    }
    let mut bitmap = vec![0u8; ckpt.num_edges.div_ceil(8)];
    for (e, &alloc) in ckpt.allocated.iter().enumerate() {
        if alloc {
            bitmap[e / 8] |= 1 << (e % 8);
        }
    }
    bytes.extend_from_slice(&bitmap);
    let checksum = Checksum::of(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());

    atomic_write(&dir.join(CHECKPOINT_NAME), |out| {
        out.write_all(&bytes).map_err(StoreError::Io)
    })
}

/// Reads the checkpoint in `dir`, if one exists.
///
/// Returns `Ok(None)` when no checkpoint file is present (a fresh run).
///
/// # Errors
///
/// [`StoreError::BadMagic`], [`StoreError::Truncated`],
/// [`StoreError::ChecksumMismatch`], or [`StoreError::Corrupt`] for a
/// damaged file; [`StoreError::Io`] for unreadable ones.
pub fn read_checkpoint(dir: &Path) -> Result<Option<EngineCheckpoint>, StoreError> {
    let path = dir.join(CHECKPOINT_NAME);
    let mut file = match FaultFile::open(&path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::Io(e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(StoreError::Io)?;

    if bytes.len() < FIXED_LEN + 8 {
        return Err(StoreError::Truncated { what: "checkpoint" });
    }
    if bytes[0..8] != CHECKPOINT_MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[0..8]);
        return Err(StoreError::BadMagic { found });
    }
    let payload = &bytes[..bytes.len() - 8];
    let declared = u64::from_le_bytes(
        bytes[bytes.len() - 8..]
            .try_into()
            .map_err(|_| StoreError::Truncated { what: "checkpoint" })?,
    );
    let actual = Checksum::of(payload);
    if declared != actual {
        return Err(StoreError::ChecksumMismatch {
            section: "checkpoint",
            expected: declared,
            actual,
        });
    }

    let u64_at = |off: usize| -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[off..off + 8]);
        u64::from_le_bytes(b)
    };
    let seed = u64_at(8);
    let num_partitions = u64_at(16) as usize;
    let next_round = u32::from_le_bytes(
        bytes[24..28]
            .try_into()
            .map_err(|_| StoreError::Truncated { what: "checkpoint" })?,
    );
    let mut rng_state = [0u64; 4];
    for (i, word) in rng_state.iter_mut().enumerate() {
        *word = u64_at(32 + 8 * i);
    }
    let num_vertices = u64_at(64) as usize;
    let num_edges = u64_at(72) as usize;

    if bytes.len() != encoded_len(num_edges) {
        return Err(StoreError::Corrupt(format!(
            "checkpoint is {} bytes, {} edges imply {}",
            bytes.len(),
            num_edges,
            encoded_len(num_edges)
        )));
    }
    let mut assignment = Vec::with_capacity(num_edges);
    for pair in bytes[FIXED_LEN..FIXED_LEN + 4 * num_edges].chunks_exact(4) {
        assignment.push(u32::from_le_bytes(
            pair.try_into()
                .map_err(|_| StoreError::Truncated { what: "checkpoint" })?,
        ));
    }
    let bitmap = &bytes[FIXED_LEN + 4 * num_edges..bytes.len() - 8];
    let allocated: Vec<bool> = (0..num_edges)
        .map(|e| bitmap[e / 8] & (1 << (e % 8)) != 0)
        .collect();

    Ok(Some(EngineCheckpoint {
        seed,
        num_partitions,
        next_round,
        rng_state,
        assignment,
        allocated,
        num_vertices,
        num_edges,
    }))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::faults;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tlp-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> EngineCheckpoint {
        EngineCheckpoint {
            seed: 99,
            num_partitions: 8,
            next_round: 3,
            rng_state: [11, 22, 33, 44],
            assignment: vec![0, 2, 1, 0, 2, 1, 0, 0, 1],
            allocated: vec![true, true, true, false, true, true, false, false, true],
            num_vertices: 12,
            num_edges: 9,
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let _guard = faults::test_lock();
        let dir = temp_dir("rt");
        let ckpt = sample();
        write_checkpoint(&dir, &ckpt).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap().unwrap(), ckpt);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let _guard = faults::test_lock();
        let dir = temp_dir("none");
        assert!(read_checkpoint(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_byte_fails_the_checksum() {
        let _guard = faults::test_lock();
        let dir = temp_dir("flip");
        write_checkpoint(&dir, &sample()).unwrap();
        let path = dir.join(CHECKPOINT_NAME);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[40] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(&dir).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_is_typed() {
        let _guard = faults::test_lock();
        let dir = temp_dir("trunc");
        write_checkpoint(&dir, &sample()).unwrap();
        let path = dir.join(CHECKPOINT_NAME);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let err = read_checkpoint(&dir).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::ChecksumMismatch { .. }
            ),
            "unexpected error {err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_previous_checkpoint() {
        let _guard = faults::test_lock();
        let dir = temp_dir("rw");
        let mut ckpt = sample();
        write_checkpoint(&dir, &ckpt).unwrap();
        ckpt.next_round = 4;
        ckpt.allocated[3] = true;
        ckpt.assignment[3] = 3;
        write_checkpoint(&dir, &ckpt).unwrap();
        assert_eq!(read_checkpoint(&dir).unwrap().unwrap(), ckpt);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
