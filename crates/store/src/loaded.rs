//! Version-agnostic graph opening: [`LoadedGraph`].
//!
//! Callers that just want "the graph at this path" shouldn't care whether
//! the file is a v1 `.tlpg` (degrees + edge pairs, decoded into a fresh
//! [`CsrGraph`]) or a v2 `.tlpg` (embedded CSR, lent zero-copy from a
//! [`GraphBuf`] arena). `LoadedGraph::open` peeks the header version and
//! dispatches, then serves a uniform [`GraphView`] either way.

use crate::arena::GraphBuf;
use crate::format::{Header, HEADER_LEN, VERSION_V2};
use crate::reader::StoreReader;
use crate::StoreError;
use std::io::Read;
use std::path::Path;
use tlp_graph::{CsrGraph, GraphView};

/// A graph opened from disk, regardless of on-disk format version.
#[derive(Clone, Debug)]
pub enum LoadedGraph {
    /// A v1 file, decoded edge-by-edge into an owned CSR graph.
    Decoded {
        /// The reconstructed graph.
        graph: CsrGraph,
        /// Original vertex ids, when the file carries them.
        original_ids: Option<Vec<u64>>,
        /// The on-disk format version this was decoded from.
        version: u32,
    },
    /// A v2 file held as a zero-copy arena.
    Arena(GraphBuf),
}

impl LoadedGraph {
    /// Opens `path`, dispatching on the header's format version: v2 files
    /// become a zero-copy [`GraphBuf`] arena, v1 files are decoded through
    /// [`StoreReader::read_graph`].
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from header validation or the chosen read path.
    pub fn open(path: &Path) -> Result<LoadedGraph, StoreError> {
        if peek_version(path)? == VERSION_V2 {
            Ok(LoadedGraph::Arena(GraphBuf::open(path)?))
        } else {
            let reader = StoreReader::open(path)?;
            let stored = reader.read_graph()?;
            Ok(LoadedGraph::Decoded {
                graph: stored.graph,
                original_ids: stored.original_ids,
                version: reader.version(),
            })
        }
    }

    /// The graph as a borrowed [`GraphView`] — zero-copy for arenas,
    /// borrowing the owned CSR for decoded files.
    pub fn view(&self) -> GraphView<'_> {
        match self {
            LoadedGraph::Decoded { graph, .. } => graph.view(),
            LoadedGraph::Arena(buf) => buf.view(),
        }
    }

    /// Original vertex ids (`original_ids[v]` = id of `v` in the text
    /// source), when persisted.
    pub fn original_ids(&self) -> Option<&[u64]> {
        match self {
            LoadedGraph::Decoded { original_ids, .. } => original_ids.as_deref(),
            LoadedGraph::Arena(buf) => buf.original_ids(),
        }
    }

    /// The on-disk format version this graph was opened from.
    pub fn format_version(&self) -> u32 {
        match self {
            LoadedGraph::Decoded { version, .. } => *version,
            LoadedGraph::Arena(buf) => buf.header().version,
        }
    }
}

/// Reads just the header and returns the validated format version.
pub(crate) fn peek_version(path: &Path) -> Result<u32, StoreError> {
    let mut file = crate::faults::FaultFile::open(path).map_err(StoreError::Io)?;
    let mut bytes = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match file.read(&mut bytes[filled..]) {
            Ok(0) => return Err(StoreError::Truncated { what: "header" }),
            Ok(k) => filled += k,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(StoreError::Io(e)),
        }
    }
    Ok(Header::decode(&bytes)?.version)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::format::FormatVersion;
    use crate::writer::{write_graph, WriteOptions};
    use std::path::PathBuf;
    use tlp_graph::GraphBuilder;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tlp-loaded-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("g.tlpg")
    }

    #[test]
    fn open_dispatches_on_version_and_views_agree() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build();
        let ids: Vec<u64> = vec![100, 200, 300, 400];
        for version in [FormatVersion::V1, FormatVersion::V2] {
            let path = tmp(&format!("v{}", version.number()));
            let options = WriteOptions {
                original_ids: Some(ids.clone()),
                version,
                ..WriteOptions::default()
            };
            write_graph(&path, &g, &options).unwrap();
            let loaded = LoadedGraph::open(&path).unwrap();
            assert_eq!(loaded.format_version(), version.number());
            match (&loaded, version) {
                (LoadedGraph::Decoded { .. }, FormatVersion::V1) => {}
                (LoadedGraph::Arena(_), FormatVersion::V2) => {}
                other => panic!("wrong dispatch: {other:?}"),
            }
            let view = loaded.view();
            assert_eq!(view.edge_iter().collect::<Vec<_>>(), g.edges().to_vec());
            for v in g.vertices() {
                assert_eq!(view.neighbors(v), g.neighbors(v));
            }
            assert_eq!(loaded.original_ids().unwrap(), ids.as_slice());
            std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
        }
    }
}
