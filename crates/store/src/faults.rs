//! Deterministic fault injection for store I/O.
//!
//! Every file the store opens for reading or writing goes through
//! [`FaultFile`], a thin wrapper that consults a process-global injector
//! before each read/write operation. Unarmed (the default) the wrapper is a
//! single relaxed atomic load per operation; armed, it counts operations
//! and fires one scheduled [`FaultKind`] at the configured index:
//!
//! * **fail-stop faults** ([`FaultKind::Crash`], [`FaultKind::ShortWrite`],
//!   [`FaultKind::Enospc`]) — the operation (and every store I/O operation
//!   after it) fails, modelling a process killed or a disk running full
//!   mid-write. `ShortWrite` additionally lets a prefix of the buffer reach
//!   the file first, modelling a torn write.
//! * **silent corruption** ([`FaultKind::BitFlip`]) — one bit of the
//!   operation's buffer is flipped (position derived deterministically from
//!   the schedule seed) and the operation *succeeds*, modelling media
//!   corruption that only checksums can catch.
//!
//! Schedules are deterministic: the same [`FaultSchedule`] against the same
//! I/O sequence always fires at the same byte. The crash-point sweep test
//! uses this to place a fault at *every* operation index in turn and assert
//! that no torn or corrupt file is ever read back silently.
//!
//! The injector is process-global, so tests that arm it must serialize
//! (see [`test_lock`]).

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// What the injector does when the scheduled operation index is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails outright (as do all later ones): a fail-stop
    /// crash between two I/O operations.
    Crash,
    /// Half the buffer is written, then the operation fails (as do all
    /// later ones): a torn write followed by a crash.
    ShortWrite,
    /// The operation fails with `ENOSPC` (as do all later ones): the disk
    /// filled up mid-write.
    Enospc,
    /// One bit of the buffer is flipped and the operation succeeds: silent
    /// media corruption. Applies to both writes and reads.
    BitFlip,
}

/// A deterministic one-shot fault: fire `kind` at the `at_op`-th store I/O
/// operation (0-based), with `seed` choosing the flipped bit for
/// [`FaultKind::BitFlip`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSchedule {
    /// 0-based index of the operation the fault fires at.
    pub at_op: u64,
    /// The fault to inject.
    pub kind: FaultKind,
    /// Seed for fault-internal randomness (bit position of a flip).
    pub seed: u64,
}

/// Injector state: armed flag + op counter + the schedule.
static ARMED: AtomicBool = AtomicBool::new(false);
static FAILED: AtomicBool = AtomicBool::new(false);
static OPS: AtomicU64 = AtomicU64::new(0);
static SCHEDULE: Mutex<Option<FaultSchedule>> = Mutex::new(None);

/// Serializes tests that arm the injector (it is process-global).
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Lock held by tests while the injector is armed, so concurrently running
/// tests do not observe each other's faults.
pub fn test_lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms the injector with `schedule`, resetting the operation counter.
pub fn arm(schedule: FaultSchedule) {
    *SCHEDULE.lock().unwrap_or_else(|e| e.into_inner()) = Some(schedule);
    OPS.store(0, Ordering::SeqCst);
    FAILED.store(false, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms the injector and returns the number of I/O operations observed
/// while armed.
pub fn disarm() -> u64 {
    ARMED.store(false, Ordering::SeqCst);
    FAILED.store(false, Ordering::SeqCst);
    *SCHEDULE.lock().unwrap_or_else(|e| e.into_inner()) = None;
    OPS.load(Ordering::SeqCst)
}

/// Counts the I/O operations `work` performs, without injecting anything.
/// Used by sweep tests to size their fault-index range.
pub fn count_ops<T>(work: impl FnOnce() -> T) -> (T, u64) {
    arm(FaultSchedule {
        at_op: u64::MAX,
        kind: FaultKind::Crash,
        seed: 0,
    });
    let out = work();
    (out, disarm())
}

/// SplitMix64 finalizer for deterministic in-fault randomness.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The action [`FaultFile`] must take for the current operation.
enum Action {
    /// Proceed normally.
    Pass,
    /// Flip the bit at this index (mod buffer length) and proceed.
    Flip(u64),
    /// Write only this many bytes, then fail.
    Short,
    /// Fail with this error.
    Fail(io::Error),
}

fn injected_error(kind: FaultKind) -> io::Error {
    match kind {
        // 28 = ENOSPC on every Unix the suite runs on.
        FaultKind::Enospc => io::Error::from_raw_os_error(28),
        _ => io::Error::other("injected fault: simulated crash"),
    }
}

/// Consults the injector for the next operation.
fn next_action() -> Action {
    if !ARMED.load(Ordering::Relaxed) {
        return Action::Pass;
    }
    if FAILED.load(Ordering::SeqCst) {
        // A fail-stop fault already fired: everything after it fails too.
        return Action::Fail(io::Error::other("injected fault: I/O after crash point"));
    }
    let op = OPS.fetch_add(1, Ordering::SeqCst);
    let Some(schedule) = *SCHEDULE.lock().unwrap_or_else(|e| e.into_inner()) else {
        return Action::Pass;
    };
    if op != schedule.at_op {
        return Action::Pass;
    }
    match schedule.kind {
        FaultKind::BitFlip => Action::Flip(mix(schedule.seed ^ op)),
        FaultKind::ShortWrite => {
            FAILED.store(true, Ordering::SeqCst);
            Action::Short
        }
        kind => {
            FAILED.store(true, Ordering::SeqCst);
            Action::Fail(injected_error(kind))
        }
    }
}

/// A [`File`] that routes every read and write through the fault injector.
///
/// All store I/O (graph writer/reader, edge streams, partition segments,
/// checkpoints) is constructed through [`FaultFile::create`] /
/// [`FaultFile::open`], so a single armed schedule covers the whole
/// subsystem.
#[derive(Debug)]
pub struct FaultFile {
    inner: File,
}

impl FaultFile {
    /// Creates (truncating) a file for writing through the injector.
    ///
    /// # Errors
    ///
    /// Propagates [`File::create`] errors; an armed fail-stop schedule can
    /// also fail the creation itself (it counts as an operation).
    pub fn create(path: &Path) -> io::Result<FaultFile> {
        match next_action() {
            Action::Fail(e) => return Err(e),
            // A torn-write schedule landing on a non-write operation still
            // fail-stops there (there is no buffer to tear).
            Action::Short => return Err(io::Error::other("injected fault: simulated crash")),
            Action::Pass | Action::Flip(_) => {}
        }
        Ok(FaultFile {
            inner: File::create(path)?,
        })
    }

    /// Opens (creating if absent) a file for appending through the
    /// injector. Used by the placement WAL, whose records must land after
    /// whatever already survived a crash.
    ///
    /// # Errors
    ///
    /// Propagates [`std::fs::OpenOptions::open`] errors; an armed
    /// fail-stop schedule can also fail the open itself.
    pub fn append(path: &Path) -> io::Result<FaultFile> {
        match next_action() {
            Action::Fail(e) => return Err(e),
            // A torn-write schedule landing on a non-write operation still
            // fail-stops there (there is no buffer to tear).
            Action::Short => return Err(io::Error::other("injected fault: simulated crash")),
            Action::Pass | Action::Flip(_) => {}
        }
        Ok(FaultFile {
            inner: std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?,
        })
    }

    /// Opens a file for reading through the injector.
    ///
    /// # Errors
    ///
    /// Propagates [`File::open`] errors; an armed fail-stop schedule can
    /// also fail the open itself.
    pub fn open(path: &Path) -> io::Result<FaultFile> {
        match next_action() {
            Action::Fail(e) => return Err(e),
            // A torn-write schedule landing on a non-write operation still
            // fail-stops there (there is no buffer to tear).
            Action::Short => return Err(io::Error::other("injected fault: simulated crash")),
            Action::Pass | Action::Flip(_) => {}
        }
        Ok(FaultFile {
            inner: File::open(path)?,
        })
    }

    /// Flushes file contents (and metadata) to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates `fsync` errors; counts as an injectable operation.
    pub fn sync_all(&self) -> io::Result<()> {
        match next_action() {
            Action::Fail(e) => return Err(e),
            // A torn-write schedule landing on a non-write operation still
            // fail-stops there (there is no buffer to tear).
            Action::Short => return Err(io::Error::other("injected fault: simulated crash")),
            Action::Pass | Action::Flip(_) => {}
        }
        tlp_obs::counter("store.fsync", 1);
        self.inner.sync_all()
    }

    /// Metadata of the underlying file.
    ///
    /// # Errors
    ///
    /// Propagates [`File::metadata`] errors.
    pub fn metadata(&self) -> io::Result<std::fs::Metadata> {
        self.inner.metadata()
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match next_action() {
            Action::Pass => self.inner.write(buf),
            Action::Flip(at) => {
                if buf.is_empty() {
                    return self.inner.write(buf);
                }
                let mut copy = buf.to_vec();
                let bit = (at % (copy.len() as u64 * 8)) as usize;
                copy[bit / 8] ^= 1 << (bit % 8);
                self.inner.write_all(&copy)?;
                Ok(buf.len())
            }
            Action::Short => {
                let half = buf.len() / 2;
                self.inner.write_all(&buf[..half])?;
                Err(io::Error::other("injected fault: torn write"))
            }
            Action::Fail(e) => Err(e),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Read for FaultFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match next_action() {
            Action::Pass => self.inner.read(buf),
            Action::Flip(at) => {
                let got = self.inner.read(buf)?;
                if got > 0 {
                    let bit = (at % (got as u64 * 8)) as usize;
                    buf[bit / 8] ^= 1 << (bit % 8);
                }
                Ok(got)
            }
            // Reads have no torn variant; a short schedule behaves as a
            // crash at this point.
            Action::Short | Action::Fail(_) => {
                Err(io::Error::other("injected fault: simulated crash"))
            }
        }
    }
}

impl Seek for FaultFile {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn temp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tlp-faults-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn unarmed_files_behave_normally() {
        let _guard = test_lock();
        let dir = temp("plain");
        let path = dir.join("f");
        let mut f = FaultFile::create(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.flush().unwrap();
        drop(f);
        let mut back = Vec::new();
        FaultFile::open(&path)
            .unwrap()
            .read_to_end(&mut back)
            .unwrap();
        assert_eq!(back, b"hello");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_fault_fails_the_scheduled_and_later_ops() {
        let _guard = test_lock();
        let dir = temp("crash");
        let path = dir.join("f");
        arm(FaultSchedule {
            at_op: 2, // create = op 0, first write = op 1
            kind: FaultKind::Crash,
            seed: 0,
        });
        let mut f = FaultFile::create(&path).unwrap();
        f.write_all(b"aa").unwrap();
        assert!(f.write_all(b"bb").is_err());
        assert!(f.write_all(b"cc").is_err(), "ops after the crash must fail");
        drop(f);
        let ops = disarm();
        assert!(ops >= 3);
        assert_eq!(std::fs::read(&path).unwrap(), b"aa");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_leaves_a_prefix() {
        let _guard = test_lock();
        let dir = temp("short");
        let path = dir.join("f");
        arm(FaultSchedule {
            at_op: 1,
            kind: FaultKind::ShortWrite,
            seed: 0,
        });
        let mut f = FaultFile::create(&path).unwrap();
        assert!(f.write_all(b"abcdefgh").is_err());
        drop(f);
        disarm();
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_fault_carries_the_os_error() {
        let _guard = test_lock();
        let dir = temp("enospc");
        let path = dir.join("f");
        arm(FaultSchedule {
            at_op: 1,
            kind: FaultKind::Enospc,
            seed: 0,
        });
        let mut f = FaultFile::create(&path).unwrap();
        let err = f.write_all(b"x").unwrap_err();
        disarm();
        assert_eq!(err.raw_os_error(), Some(28));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit_and_succeeds() {
        let _guard = test_lock();
        let dir = temp("flip");
        let path = dir.join("f");
        arm(FaultSchedule {
            at_op: 1,
            kind: FaultKind::BitFlip,
            seed: 7,
        });
        let mut f = FaultFile::create(&path).unwrap();
        f.write_all(&[0u8; 16]).unwrap();
        drop(f);
        disarm();
        let back = std::fs::read(&path).unwrap();
        let ones: u32 = back.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit must differ");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn count_ops_reports_and_injects_nothing() {
        let _guard = test_lock();
        let dir = temp("count");
        let path = dir.join("f");
        let (result, ops) = count_ops(|| {
            let mut f = FaultFile::create(&path)?;
            f.write_all(b"abc")?;
            f.write_all(b"def")?;
            Ok::<(), io::Error>(())
        });
        result.unwrap();
        assert_eq!(ops, 3); // create + 2 writes
        assert_eq!(std::fs::read(&path).unwrap(), b"abcdef");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_bit_flip_corrupts_the_read_buffer() {
        let _guard = test_lock();
        let dir = temp("rflip");
        let path = dir.join("f");
        std::fs::write(&path, [0u8; 8]).unwrap();
        arm(FaultSchedule {
            at_op: 1, // open = op 0
            kind: FaultKind::BitFlip,
            seed: 3,
        });
        let mut buf = [0u8; 8];
        let mut f = FaultFile::open(&path).unwrap();
        f.read_exact(&mut buf).unwrap();
        disarm();
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
