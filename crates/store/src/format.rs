//! The `.tlpg` binary graph format: constants, header layout, checksums.
//!
//! # Layout (version 1, all integers little-endian)
//!
//! ```text
//! [ 0.. 8)  magic           b"TLPSTORE"
//! [ 8..12)  version         u32 (= 1)
//! [12..16)  flags           u32 (bit 0: original-ids section present)
//! [16..24)  num_vertices    u64
//! [24..32)  num_edges       u64
//! [32..40)  source_len      u64 (byte length of the text source, 0 = unknown)
//! [40..48)  source_mtime    u64 (mtime of the text source in unix seconds)
//! [48..56)  header_checksum u64 ([`Checksum`] over bytes [0..48))
//! ```
//!
//! followed by sections, each framed as
//!
//! ```text
//! tag u32 | reserved u32 | payload_len u64 | payload_checksum u64 | payload
//! ```
//!
//! in fixed order: `DEGS` (one `u32` degree per vertex — the CSR offset
//! array in delta form), `EDGE` (the canonical sorted edge table, one
//! `(u: u32, v: u32)` pair per undirected edge, written and read in
//! bounded-size chunks of [`CHUNK_EDGES`]), and optionally `OIDS` (one
//! `u64` original id per vertex, for graphs densified from text files).
//!
//! Every section carries its own [`Checksum`] (a word-folded FNV-1a 64)
//! so a single flipped byte anywhere in the file is detected as a typed
//! [`StoreError::ChecksumMismatch`],
//! never as a wrong answer.

use crate::StoreError;
use std::io::Read;

/// File magic for the binary graph format.
pub const MAGIC: [u8; 8] = *b"TLPSTORE";
/// Current format version.
pub const VERSION: u32 = 1;
/// Header flag: the file carries an `OIDS` section.
pub const FLAG_ORIGINAL_IDS: u32 = 1;
/// Byte length of the fixed header (including its checksum).
pub const HEADER_LEN: usize = 56;
/// Edges per write/read chunk: bounds writer and reader buffers to
/// `CHUNK_EDGES * 8` bytes (512 KiB) regardless of graph size.
pub const CHUNK_EDGES: usize = 65_536;

/// Section tag: per-vertex degrees.
pub const TAG_DEGREES: u32 = u32::from_le_bytes(*b"DEGS");
/// Section tag: canonical edge table.
pub const TAG_EDGES: u32 = u32::from_le_bytes(*b"EDGE");
/// Section tag: original vertex ids.
pub const TAG_ORIGINAL_IDS: u32 = u32::from_le_bytes(*b"OIDS");

/// Incremental FNV-1a 64 checksum, folded one little-endian `u64` word at
/// a time; a tail shorter than a word is folded byte-wise. Word folding
/// keeps the serial multiply chain ~8x shorter than the classic per-byte
/// variant, which matters on multi-megabyte edge sections. Each step is a
/// bijection of the running hash, so any single flipped byte changes the
/// final value. The result is independent of how the input is split
/// across [`Checksum::update`] calls.
#[derive(Clone, Copy, Debug)]
pub struct Checksum {
    hash: u64,
    pending: [u8; 8],
    pending_len: usize,
}

impl Checksum {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Checksum {
            hash: Self::OFFSET,
            pending: [0; 8],
            pending_len: 0,
        }
    }

    fn fold(h: u64, word: u64) -> u64 {
        (h ^ word).wrapping_mul(Self::PRIME)
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, mut bytes: &[u8]) {
        if self.pending_len > 0 {
            let take = (8 - self.pending_len).min(bytes.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&bytes[..take]);
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len < 8 {
                return;
            }
            self.hash = Self::fold(self.hash, u64::from_le_bytes(self.pending));
            self.pending_len = 0;
        }
        let mut h = self.hash;
        let mut words = bytes.chunks_exact(8);
        for word in &mut words {
            h = Self::fold(h, u64::from_le_bytes(word.try_into().expect("8 bytes")));
        }
        self.hash = h;
        let tail = words.remainder();
        self.pending[..tail.len()].copy_from_slice(tail);
        self.pending_len = tail.len();
    }

    /// The checksum of everything folded in so far.
    pub fn value(&self) -> u64 {
        self.pending[..self.pending_len]
            .iter()
            .fold(self.hash, |h, &b| Self::fold(h, u64::from(b)))
    }

    /// One-shot convenience: the checksum of `bytes`.
    pub fn of(bytes: &[u8]) -> u64 {
        let mut c = Checksum::new();
        c.update(bytes);
        c.value()
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Checksum::new()
    }
}

/// Provenance stamp of the text file a binary store was converted from,
/// used to detect stale caches. `UNKNOWN` marks stores not derived from a
/// text source (e.g. written straight from a generator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SourceStamp {
    /// Byte length of the source file (0 = unknown).
    pub len: u64,
    /// Modification time of the source in unix seconds (0 = unknown).
    pub mtime: u64,
}

impl SourceStamp {
    /// A stamp for stores without a text provenance.
    pub const UNKNOWN: SourceStamp = SourceStamp { len: 0, mtime: 0 };

    /// Reads the stamp of a file on disk (len + mtime in unix seconds).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the file's metadata is unreadable.
    pub fn of_file(path: &std::path::Path) -> Result<SourceStamp, StoreError> {
        let meta = std::fs::metadata(path).map_err(StoreError::Io)?;
        let mtime = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Ok(SourceStamp {
            len: meta.len(),
            mtime,
        })
    }
}

/// The decoded fixed header of a `.tlpg` file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Number of vertices (including isolated ones).
    pub num_vertices: u64,
    /// Number of undirected edges.
    pub num_edges: u64,
    /// Whether an original-ids section follows the edge section.
    pub has_original_ids: bool,
    /// Provenance stamp of the converted text source.
    pub source: SourceStamp,
}

impl Header {
    /// Encodes the header, including its trailing checksum.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&VERSION.to_le_bytes());
        let flags = if self.has_original_ids {
            FLAG_ORIGINAL_IDS
        } else {
            0
        };
        out[12..16].copy_from_slice(&flags.to_le_bytes());
        out[16..24].copy_from_slice(&self.num_vertices.to_le_bytes());
        out[24..32].copy_from_slice(&self.num_edges.to_le_bytes());
        out[32..40].copy_from_slice(&self.source.len.to_le_bytes());
        out[40..48].copy_from_slice(&self.source.mtime.to_le_bytes());
        let checksum = Checksum::of(&out[0..48]);
        out[48..56].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes and validates a header read from the start of a file.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`], or
    /// [`StoreError::ChecksumMismatch`] for the respective defects.
    pub fn decode(bytes: &[u8; HEADER_LEN]) -> Result<Header, StoreError> {
        if bytes[0..8] != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&bytes[0..8]);
            return Err(StoreError::BadMagic { found });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let expected = u64::from_le_bytes(bytes[48..56].try_into().expect("8 bytes"));
        let actual = Checksum::of(&bytes[0..48]);
        if expected != actual {
            return Err(StoreError::ChecksumMismatch {
                section: "header",
                expected,
                actual,
            });
        }
        let flags = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        Ok(Header {
            num_vertices: u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
            num_edges: u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")),
            has_original_ids: flags & FLAG_ORIGINAL_IDS != 0,
            source: SourceStamp {
                len: u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes")),
                mtime: u64::from_le_bytes(bytes[40..48].try_into().expect("8 bytes")),
            },
        })
    }
}

/// A decoded section frame (tag + length + declared checksum).
#[derive(Clone, Copy, Debug)]
pub struct SectionFrame {
    /// Section tag (one of the `TAG_*` constants).
    pub tag: u32,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// Declared FNV-1a 64 checksum of the payload.
    pub checksum: u64,
}

/// Byte length of an encoded section frame.
pub const SECTION_FRAME_LEN: usize = 24;

impl SectionFrame {
    /// Encodes the frame header preceding a section payload.
    pub fn encode(&self) -> [u8; SECTION_FRAME_LEN] {
        let mut out = [0u8; SECTION_FRAME_LEN];
        out[0..4].copy_from_slice(&self.tag.to_le_bytes());
        out[8..16].copy_from_slice(&self.payload_len.to_le_bytes());
        out[16..24].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Reads a frame, verifying it carries the expected tag.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] on short read, [`StoreError::Corrupt`] on a
    /// tag mismatch.
    pub fn read_expecting<R: Read>(
        reader: &mut R,
        expected_tag: u32,
        what: &'static str,
    ) -> Result<SectionFrame, StoreError> {
        let mut bytes = [0u8; SECTION_FRAME_LEN];
        read_exact_or_truncated(reader, &mut bytes, what)?;
        let tag = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        if tag != expected_tag {
            return Err(StoreError::Corrupt(format!(
                "expected section {:?}, found tag {tag:#010x}",
                tag_name(expected_tag)
            )));
        }
        Ok(SectionFrame {
            tag,
            payload_len: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
            checksum: u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
        })
    }
}

/// Human-readable name of a section tag.
pub fn tag_name(tag: u32) -> &'static str {
    match tag {
        TAG_DEGREES => "DEGS",
        TAG_EDGES => "EDGE",
        TAG_ORIGINAL_IDS => "OIDS",
        _ => "unknown",
    }
}

/// `read_exact` that reports a short read as [`StoreError::Truncated`]
/// (with context) instead of a bare I/O error.
pub fn read_exact_or_truncated<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), StoreError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { what }
        } else {
            StoreError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn checksum_is_deterministic_and_incremental() {
        let oneshot = Checksum::of(b"hello world");
        let mut inc = Checksum::new();
        inc.update(b"hello ");
        inc.update(b"world");
        assert_eq!(oneshot, inc.value());
        assert_ne!(oneshot, Checksum::of(b"hello worle"));
        // Known FNV-1a 64 vector.
        assert_eq!(Checksum::of(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn header_roundtrip() {
        let h = Header {
            num_vertices: 10,
            num_edges: 25,
            has_original_ids: true,
            source: SourceStamp { len: 99, mtime: 7 },
        };
        let decoded = Header::decode(&h.encode()).unwrap();
        assert_eq!(h, decoded);
    }

    #[test]
    fn header_rejects_bad_magic_version_and_checksum() {
        let h = Header {
            num_vertices: 1,
            num_edges: 0,
            has_original_ids: false,
            source: SourceStamp::UNKNOWN,
        };
        let good = h.encode();

        let mut bad_magic = good;
        bad_magic[0] = b'X';
        assert!(matches!(
            Header::decode(&bad_magic),
            Err(StoreError::BadMagic { .. })
        ));

        let mut bad_version = good;
        bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Header::decode(&bad_version),
            Err(StoreError::UnsupportedVersion { found: 99 })
        ));

        let mut flipped = good;
        flipped[20] ^= 0x40; // inside num_vertices
        assert!(matches!(
            Header::decode(&flipped),
            Err(StoreError::ChecksumMismatch {
                section: "header",
                ..
            })
        ));
    }

    #[test]
    fn section_frame_roundtrip_and_tag_check() {
        let frame = SectionFrame {
            tag: TAG_EDGES,
            payload_len: 80,
            checksum: 0xdead_beef,
        };
        let bytes = frame.encode();
        let mut cursor = &bytes[..];
        let back = SectionFrame::read_expecting(&mut cursor, TAG_EDGES, "edges").unwrap();
        assert_eq!(back.payload_len, 80);
        assert_eq!(back.checksum, 0xdead_beef);

        let mut cursor = &bytes[..];
        let err = SectionFrame::read_expecting(&mut cursor, TAG_DEGREES, "degrees").unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));

        let mut short = &bytes[..10];
        let err = SectionFrame::read_expecting(&mut short, TAG_EDGES, "edges").unwrap_err();
        assert!(matches!(err, StoreError::Truncated { .. }));
    }

    #[test]
    fn tag_names() {
        assert_eq!(tag_name(TAG_DEGREES), "DEGS");
        assert_eq!(tag_name(TAG_EDGES), "EDGE");
        assert_eq!(tag_name(TAG_ORIGINAL_IDS), "OIDS");
        assert_eq!(tag_name(0), "unknown");
    }
}
