//! The `.tlpg` binary graph format: constants, header layout, checksums.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! [ 0.. 8)  magic           b"TLPSTORE"
//! [ 8..12)  version         u32 (1 or 2)
//! [12..16)  flags           u32 (bit 0: original-ids section present)
//! [16..24)  num_vertices    u64
//! [24..32)  num_edges       u64
//! [32..40)  source_len      u64 (byte length of the text source, 0 = unknown)
//! [40..48)  source_mtime    u64 (mtime of the text source in unix seconds)
//! [48..56)  header_checksum u64 ([`Checksum`] over bytes [0..48))
//! ```
//!
//! followed by sections, each framed as
//!
//! ```text
//! tag u32 | reserved u32 | payload_len u64 | payload_checksum u64 | payload
//! ```
//!
//! **Version 1** sections, in fixed order: `DEGS` (one `u32` degree per
//! vertex — the CSR offset array in delta form), `EDGE` (the canonical
//! sorted edge table, one `(u: u32, v: u32)` pair per undirected edge,
//! written and read in bounded-size chunks of [`CHUNK_EDGES`]), and
//! optionally `OIDS` (one `u64` original id per vertex, for graphs
//! densified from text files). Opening a v1 file decodes the edge table
//! and rebuilds the CSR arrays in memory.
//!
//! **Version 2** embeds the CSR arrays themselves so opening is one bulk
//! read plus checksum validation — zero per-edge decode, no CSR rebuild.
//! Fixed section order: `OFFS` (`(n+1) × u64` vertex offsets — degrees are
//! derived by differencing, so `DEGS` is dropped), `ADJV` (`2m × u32`
//! neighbor ids, sorted ascending per vertex), `ADJE` (`2m × u32` arc edge
//! ids, parallel to `ADJV`), `EDGE` (identical payload to v1, which keeps
//! sequential streaming format-agnostic), and optionally `OIDS`. Every v2
//! payload length is a multiple of 8 and the header (56) plus frame (24)
//! bytes sum to 80, so **every v2 payload begins 8-byte-aligned** — the
//! invariant that lets a reader lend `u64`/`u32` slices straight out of
//! one aligned arena ([`crate::GraphBuf`]).
//!
//! Every section carries its own checksum so a single flipped byte
//! anywhere in the file is detected as a typed
//! [`StoreError::ChecksumMismatch`], never as a wrong answer. v1 sections
//! use [`Checksum`] (word-folded FNV-1a 64); v2 sections use
//! [`WideChecksum`] (eight interleaved rotate-add lanes), which drops the
//! serial multiply dependency chain entirely and checksums the much larger
//! embedded CSR payloads at memory bandwidth.
//! [`SectionHasher`] picks the right one for a file's version.

use crate::StoreError;
use std::io::Read;

/// File magic for the binary graph format.
pub const MAGIC: [u8; 8] = *b"TLPSTORE";
/// Format version 1: degree + edge sections, CSR rebuilt on open.
pub const VERSION: u32 = 1;
/// Format version 2: embedded CSR sections, zero-copy open.
pub const VERSION_V2: u32 = 2;
/// Header flag: the file carries an `OIDS` section.
pub const FLAG_ORIGINAL_IDS: u32 = 1;
/// Byte length of the fixed header (including its checksum).
pub const HEADER_LEN: usize = 56;
/// Edges per write/read chunk: bounds writer and reader buffers to
/// `CHUNK_EDGES * 8` bytes (512 KiB) regardless of graph size.
pub const CHUNK_EDGES: usize = 65_536;

/// Section tag: per-vertex degrees (v1 only).
pub const TAG_DEGREES: u32 = u32::from_le_bytes(*b"DEGS");
/// Section tag: canonical edge table.
pub const TAG_EDGES: u32 = u32::from_le_bytes(*b"EDGE");
/// Section tag: original vertex ids.
pub const TAG_ORIGINAL_IDS: u32 = u32::from_le_bytes(*b"OIDS");
/// Section tag: CSR vertex offsets, `(n+1) × u64` (v2 only).
pub const TAG_OFFSETS: u32 = u32::from_le_bytes(*b"OFFS");
/// Section tag: CSR neighbor ids, `2m × u32` (v2 only).
pub const TAG_ADJ_VERTEX: u32 = u32::from_le_bytes(*b"ADJV");
/// Section tag: CSR arc edge ids, `2m × u32` (v2 only).
pub const TAG_ADJ_EDGE: u32 = u32::from_le_bytes(*b"ADJE");

/// Which on-disk layout to write.
///
/// New writes default to [`FormatVersion::V2`]; v1 remains writable for
/// compatibility fixtures and for tools that must interoperate with old
/// readers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FormatVersion {
    /// Version 1: degree + edge sections, CSR rebuilt on open.
    V1,
    /// Version 2: embedded CSR sections, zero-copy open.
    #[default]
    V2,
}

impl FormatVersion {
    /// The version number written to the header.
    pub fn number(self) -> u32 {
        match self {
            FormatVersion::V1 => VERSION,
            FormatVersion::V2 => VERSION_V2,
        }
    }
}

/// Incremental FNV-1a 64 checksum, folded one little-endian `u64` word at
/// a time; a tail shorter than a word is folded byte-wise. Word folding
/// keeps the serial multiply chain ~8x shorter than the classic per-byte
/// variant, which matters on multi-megabyte edge sections. Each step is a
/// bijection of the running hash, so any single flipped byte changes the
/// final value. The result is independent of how the input is split
/// across [`Checksum::update`] calls.
#[derive(Clone, Copy, Debug)]
pub struct Checksum {
    hash: u64,
    pending: [u8; 8],
    pending_len: usize,
}

impl Checksum {
    pub(crate) const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    pub(crate) const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Checksum {
            hash: Self::OFFSET,
            pending: [0; 8],
            pending_len: 0,
        }
    }

    fn fold(h: u64, word: u64) -> u64 {
        (h ^ word).wrapping_mul(Self::PRIME)
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, mut bytes: &[u8]) {
        if self.pending_len > 0 {
            let take = (8 - self.pending_len).min(bytes.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&bytes[..take]);
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len < 8 {
                return;
            }
            self.hash = Self::fold(self.hash, u64::from_le_bytes(self.pending));
            self.pending_len = 0;
        }
        let mut h = self.hash;
        let mut words = bytes.chunks_exact(8);
        for word in &mut words {
            h = Self::fold(h, u64::from_le_bytes(word.try_into().expect("8 bytes")));
        }
        self.hash = h;
        let tail = words.remainder();
        self.pending[..tail.len()].copy_from_slice(tail);
        self.pending_len = tail.len();
    }

    /// The checksum of everything folded in so far.
    pub fn value(&self) -> u64 {
        self.pending[..self.pending_len]
            .iter()
            .fold(self.hash, |h, &b| Self::fold(h, u64::from(b)))
    }

    /// One-shot convenience: the checksum of `bytes`.
    pub fn of(bytes: &[u8]) -> u64 {
        let mut c = Checksum::new();
        c.update(bytes);
        c.value()
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Checksum::new()
    }
}

/// Eight interleaved rotate-add lanes: the v2 section checksum.
///
/// Input is consumed in 64-byte blocks; word `i` of each block folds into
/// lane `i` with a multiply-free xor–rotate–add step, so the eight chains
/// are independent, every operation is single-cycle, and the sweep runs
/// at memory bandwidth — several times the throughput of the serial FNV
/// chain in [`Checksum`] on the multi-megabyte embedded CSR sections. The
/// final value folds the lanes together in order, then the total byte
/// length (which also disambiguates trailing zeros). Like [`Checksum`],
/// each step is a bijection of its lane, so any single flipped byte
/// changes the final value, and the result is independent of how input is
/// split across [`WideChecksum::update`] calls.
#[derive(Clone, Copy, Debug)]
pub struct WideChecksum {
    lanes: [u64; 8],
    pending: [u8; 64],
    pending_len: usize,
    total: u64,
}

impl WideChecksum {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        let mut lanes = [0u64; 8];
        for (i, lane) in lanes.iter_mut().enumerate() {
            // Distinct offsets per lane so permuting equal-valued words
            // across lanes still perturbs the final fold.
            *lane = Checksum::OFFSET ^ (i as u64);
        }
        WideChecksum {
            lanes,
            pending: [0; 64],
            pending_len: 0,
            total: 0,
        }
    }

    /// One lane step: inject the word, rotate, add an odd constant. Each
    /// step is a bijection of the lane (xor, rotation, and addition are
    /// all invertible), so any single corrupted word still guarantees a
    /// different final value. Unlike the FNV fold in [`Checksum`] there
    /// is no multiply: the 64-bit multiply chain tops out well below
    /// single-core memory bandwidth, while rotate + add sweeps sections
    /// as fast as they can be read.
    fn fold(h: u64, word: u64) -> u64 {
        (h ^ word).rotate_left(29).wrapping_add(Checksum::PRIME)
    }

    fn fold_block(lanes: &mut [u64; 8], block: &[u8]) {
        for (i, word) in block.chunks_exact(8).enumerate() {
            let w = u64::from_le_bytes(word.try_into().expect("8 bytes"));
            lanes[i] = Self::fold(lanes[i], w);
        }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.total += bytes.len() as u64;
        if self.pending_len > 0 {
            let take = (64 - self.pending_len).min(bytes.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&bytes[..take]);
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len < 64 {
                return;
            }
            let block = self.pending;
            Self::fold_block(&mut self.lanes, &block);
            self.pending_len = 0;
        }
        // Fast path: when the input is 8-byte aligned in memory (every
        // arena payload and writer buffer is), fold whole 64-byte blocks
        // straight from `u64` words, keeping the eight lanes in
        // registers. `u64::from_le` makes the value match the byte-wise
        // path on any host.
        let whole = bytes.len() - bytes.len() % 64;
        if let Ok(words) = bytemuck::try_cast_slice::<u8, u64>(&bytes[..whole]) {
            // Named locals (not an indexed array) so the eight lanes live
            // in registers across the loop instead of spilling.
            let [mut l0, mut l1, mut l2, mut l3, mut l4, mut l5, mut l6, mut l7] = self.lanes;
            for block in words.chunks_exact(8) {
                let block: &[u64; 8] = block.try_into().expect("8 words");
                l0 = Self::fold(l0, u64::from_le(block[0]));
                l1 = Self::fold(l1, u64::from_le(block[1]));
                l2 = Self::fold(l2, u64::from_le(block[2]));
                l3 = Self::fold(l3, u64::from_le(block[3]));
                l4 = Self::fold(l4, u64::from_le(block[4]));
                l5 = Self::fold(l5, u64::from_le(block[5]));
                l6 = Self::fold(l6, u64::from_le(block[6]));
                l7 = Self::fold(l7, u64::from_le(block[7]));
            }
            self.lanes = [l0, l1, l2, l3, l4, l5, l6, l7];
            bytes = &bytes[whole..];
        }
        let mut blocks = bytes.chunks_exact(64);
        for block in &mut blocks {
            Self::fold_block(&mut self.lanes, block);
        }
        let tail = blocks.remainder();
        self.pending[..tail.len()].copy_from_slice(tail);
        self.pending_len = tail.len();
    }

    /// The checksum of everything folded in so far.
    pub fn value(&self) -> u64 {
        let mut lanes = self.lanes;
        let pending = &self.pending[..self.pending_len];
        let mut words = pending.chunks_exact(8);
        for (i, word) in (&mut words).enumerate() {
            let w = u64::from_le_bytes(word.try_into().expect("8 bytes"));
            lanes[i] = Self::fold(lanes[i], w);
        }
        let mut h = Checksum::OFFSET;
        for lane in lanes {
            h = Self::fold(h, lane);
        }
        for &b in words.remainder() {
            h = Self::fold(h, u64::from(b));
        }
        Self::fold(h, self.total)
    }

    /// One-shot convenience: the checksum of `bytes`.
    pub fn of(bytes: &[u8]) -> u64 {
        let mut c = WideChecksum::new();
        c.update(bytes);
        c.value()
    }
}

impl Default for WideChecksum {
    fn default() -> Self {
        WideChecksum::new()
    }
}

/// The section checksum algorithm for a given format version:
/// [`Checksum`] for v1 sections, [`WideChecksum`] for v2.
#[derive(Clone, Copy, Debug)]
pub enum SectionHasher {
    /// Single-lane word-folded FNV-1a 64 (v1).
    Plain(Checksum),
    /// Eight-lane interleaved rotate-add (v2).
    Wide(WideChecksum),
}

impl SectionHasher {
    /// The hasher used by section payloads of `version`.
    pub fn for_version(version: u32) -> SectionHasher {
        if version >= VERSION_V2 {
            SectionHasher::Wide(WideChecksum::new())
        } else {
            SectionHasher::Plain(Checksum::new())
        }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        match self {
            SectionHasher::Plain(c) => c.update(bytes),
            SectionHasher::Wide(c) => c.update(bytes),
        }
    }

    /// The checksum of everything folded in so far.
    pub fn value(&self) -> u64 {
        match self {
            SectionHasher::Plain(c) => c.value(),
            SectionHasher::Wide(c) => c.value(),
        }
    }
}

/// Provenance stamp of the text file a binary store was converted from,
/// used to detect stale caches. `UNKNOWN` marks stores not derived from a
/// text source (e.g. written straight from a generator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SourceStamp {
    /// Byte length of the source file (0 = unknown).
    pub len: u64,
    /// Modification time of the source in unix seconds (0 = unknown).
    pub mtime: u64,
}

impl SourceStamp {
    /// A stamp for stores without a text provenance.
    pub const UNKNOWN: SourceStamp = SourceStamp { len: 0, mtime: 0 };

    /// Reads the stamp of a file on disk (len + mtime in unix seconds).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the file's metadata is unreadable.
    pub fn of_file(path: &std::path::Path) -> Result<SourceStamp, StoreError> {
        let meta = std::fs::metadata(path).map_err(StoreError::Io)?;
        let mtime = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Ok(SourceStamp {
            len: meta.len(),
            mtime,
        })
    }
}

/// The decoded fixed header of a `.tlpg` file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Header {
    /// Format version ([`VERSION`] or [`VERSION_V2`]).
    pub version: u32,
    /// Number of vertices (including isolated ones).
    pub num_vertices: u64,
    /// Number of undirected edges.
    pub num_edges: u64,
    /// Whether an original-ids section follows the edge section.
    pub has_original_ids: bool,
    /// Provenance stamp of the converted text source.
    pub source: SourceStamp,
}

impl Header {
    /// Encodes the header, including its trailing checksum.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&self.version.to_le_bytes());
        let flags = if self.has_original_ids {
            FLAG_ORIGINAL_IDS
        } else {
            0
        };
        out[12..16].copy_from_slice(&flags.to_le_bytes());
        out[16..24].copy_from_slice(&self.num_vertices.to_le_bytes());
        out[24..32].copy_from_slice(&self.num_edges.to_le_bytes());
        out[32..40].copy_from_slice(&self.source.len.to_le_bytes());
        out[40..48].copy_from_slice(&self.source.mtime.to_le_bytes());
        let checksum = Checksum::of(&out[0..48]);
        out[48..56].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes and validates a header read from the start of a file.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`], or
    /// [`StoreError::ChecksumMismatch`] for the respective defects.
    pub fn decode(bytes: &[u8; HEADER_LEN]) -> Result<Header, StoreError> {
        if bytes[0..8] != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&bytes[0..8]);
            return Err(StoreError::BadMagic { found });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION && version != VERSION_V2 {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let expected = u64::from_le_bytes(bytes[48..56].try_into().expect("8 bytes"));
        let actual = Checksum::of(&bytes[0..48]);
        if expected != actual {
            return Err(StoreError::ChecksumMismatch {
                section: "header",
                expected,
                actual,
            });
        }
        let flags = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        Ok(Header {
            version,
            num_vertices: u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
            num_edges: u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")),
            has_original_ids: flags & FLAG_ORIGINAL_IDS != 0,
            source: SourceStamp {
                len: u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes")),
                mtime: u64::from_le_bytes(bytes[40..48].try_into().expect("8 bytes")),
            },
        })
    }
}

/// A decoded section frame (tag + length + declared checksum).
#[derive(Clone, Copy, Debug)]
pub struct SectionFrame {
    /// Section tag (one of the `TAG_*` constants).
    pub tag: u32,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// Declared FNV-1a 64 checksum of the payload.
    pub checksum: u64,
}

/// Byte length of an encoded section frame.
pub const SECTION_FRAME_LEN: usize = 24;

impl SectionFrame {
    /// Encodes the frame header preceding a section payload.
    pub fn encode(&self) -> [u8; SECTION_FRAME_LEN] {
        let mut out = [0u8; SECTION_FRAME_LEN];
        out[0..4].copy_from_slice(&self.tag.to_le_bytes());
        out[8..16].copy_from_slice(&self.payload_len.to_le_bytes());
        out[16..24].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Reads a frame, verifying it carries the expected tag.
    ///
    /// # Errors
    ///
    /// [`StoreError::Truncated`] on short read, [`StoreError::Corrupt`] on a
    /// tag mismatch.
    pub fn read_expecting<R: Read>(
        reader: &mut R,
        expected_tag: u32,
        what: &'static str,
    ) -> Result<SectionFrame, StoreError> {
        let mut bytes = [0u8; SECTION_FRAME_LEN];
        read_exact_or_truncated(reader, &mut bytes, what)?;
        let tag = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        if tag != expected_tag {
            return Err(StoreError::Corrupt(format!(
                "expected section {:?}, found tag {tag:#010x}",
                tag_name(expected_tag)
            )));
        }
        Ok(SectionFrame {
            tag,
            payload_len: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
            checksum: u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
        })
    }
}

/// Human-readable name of a section tag.
pub fn tag_name(tag: u32) -> &'static str {
    match tag {
        TAG_DEGREES => "DEGS",
        TAG_EDGES => "EDGE",
        TAG_ORIGINAL_IDS => "OIDS",
        TAG_OFFSETS => "OFFS",
        TAG_ADJ_VERTEX => "ADJV",
        TAG_ADJ_EDGE => "ADJE",
        _ => "unknown",
    }
}

/// `read_exact` that reports a short read as [`StoreError::Truncated`]
/// (with context) instead of a bare I/O error.
pub fn read_exact_or_truncated<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), StoreError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { what }
        } else {
            StoreError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn checksum_is_deterministic_and_incremental() {
        let oneshot = Checksum::of(b"hello world");
        let mut inc = Checksum::new();
        inc.update(b"hello ");
        inc.update(b"world");
        assert_eq!(oneshot, inc.value());
        assert_ne!(oneshot, Checksum::of(b"hello worle"));
        // Known FNV-1a 64 vector.
        assert_eq!(Checksum::of(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn header_roundtrip() {
        for version in [VERSION, VERSION_V2] {
            let h = Header {
                version,
                num_vertices: 10,
                num_edges: 25,
                has_original_ids: true,
                source: SourceStamp { len: 99, mtime: 7 },
            };
            let decoded = Header::decode(&h.encode()).unwrap();
            assert_eq!(h, decoded);
        }
    }

    #[test]
    fn header_rejects_bad_magic_version_and_checksum() {
        let h = Header {
            version: VERSION,
            num_vertices: 1,
            num_edges: 0,
            has_original_ids: false,
            source: SourceStamp::UNKNOWN,
        };
        let good = h.encode();

        let mut bad_magic = good;
        bad_magic[0] = b'X';
        assert!(matches!(
            Header::decode(&bad_magic),
            Err(StoreError::BadMagic { .. })
        ));

        let mut bad_version = good;
        bad_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Header::decode(&bad_version),
            Err(StoreError::UnsupportedVersion { found: 99 })
        ));

        let mut flipped = good;
        flipped[20] ^= 0x40; // inside num_vertices
        assert!(matches!(
            Header::decode(&flipped),
            Err(StoreError::ChecksumMismatch {
                section: "header",
                ..
            })
        ));
    }

    #[test]
    fn section_frame_roundtrip_and_tag_check() {
        let frame = SectionFrame {
            tag: TAG_EDGES,
            payload_len: 80,
            checksum: 0xdead_beef,
        };
        let bytes = frame.encode();
        let mut cursor = &bytes[..];
        let back = SectionFrame::read_expecting(&mut cursor, TAG_EDGES, "edges").unwrap();
        assert_eq!(back.payload_len, 80);
        assert_eq!(back.checksum, 0xdead_beef);

        let mut cursor = &bytes[..];
        let err = SectionFrame::read_expecting(&mut cursor, TAG_DEGREES, "degrees").unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));

        let mut short = &bytes[..10];
        let err = SectionFrame::read_expecting(&mut short, TAG_EDGES, "edges").unwrap_err();
        assert!(matches!(err, StoreError::Truncated { .. }));
    }

    #[test]
    fn tag_names() {
        assert_eq!(tag_name(TAG_DEGREES), "DEGS");
        assert_eq!(tag_name(TAG_EDGES), "EDGE");
        assert_eq!(tag_name(TAG_ORIGINAL_IDS), "OIDS");
        assert_eq!(tag_name(TAG_OFFSETS), "OFFS");
        assert_eq!(tag_name(TAG_ADJ_VERTEX), "ADJV");
        assert_eq!(tag_name(TAG_ADJ_EDGE), "ADJE");
        assert_eq!(tag_name(0), "unknown");
    }

    #[test]
    fn wide_checksum_is_split_invariant() {
        let data: Vec<u8> = (0..1000u32).flat_map(|x| x.to_le_bytes()).collect();
        let oneshot = WideChecksum::of(&data);
        // Every awkward split boundary must produce the same value.
        for split in [0, 1, 7, 8, 63, 64, 65, 100, 999, data.len()] {
            let mut inc = WideChecksum::new();
            inc.update(&data[..split]);
            inc.update(&data[split..]);
            assert_eq!(inc.value(), oneshot, "split at {split}");
        }
        let mut dribble = WideChecksum::new();
        for b in &data {
            dribble.update(std::slice::from_ref(b));
        }
        assert_eq!(dribble.value(), oneshot);
    }

    #[test]
    fn wide_checksum_detects_single_bit_flips_and_length() {
        let data = vec![0xA5u8; 512];
        let base = WideChecksum::of(&data);
        for pos in [0, 7, 8, 63, 64, 200, 511] {
            let mut flipped = data.clone();
            flipped[pos] ^= 1;
            assert_ne!(WideChecksum::of(&flipped), base, "flip at {pos}");
        }
        // Same content, different length (trailing zeros) must differ.
        let mut longer = data.clone();
        longer.push(0);
        assert_ne!(WideChecksum::of(&longer), base);
        // Swapping two equal-position words across lanes changes the value.
        let mut swapped = data.clone();
        swapped[..8].copy_from_slice(&1u64.to_le_bytes());
        swapped[8..16].copy_from_slice(&2u64.to_le_bytes());
        let a = WideChecksum::of(&swapped);
        swapped[..8].copy_from_slice(&2u64.to_le_bytes());
        swapped[8..16].copy_from_slice(&1u64.to_le_bytes());
        assert_ne!(WideChecksum::of(&swapped), a);
    }

    #[test]
    fn section_hasher_matches_version() {
        let data = b"some payload bytes".as_slice();
        let mut v1 = SectionHasher::for_version(VERSION);
        v1.update(data);
        assert_eq!(v1.value(), Checksum::of(data));
        let mut v2 = SectionHasher::for_version(VERSION_V2);
        v2.update(data);
        assert_eq!(v2.value(), WideChecksum::of(data));
        assert_ne!(v1.value(), v2.value());
    }

    #[test]
    fn format_version_numbers() {
        assert_eq!(FormatVersion::default(), FormatVersion::V2);
        assert_eq!(FormatVersion::V1.number(), VERSION);
        assert_eq!(FormatVersion::V2.number(), VERSION_V2);
    }
}
