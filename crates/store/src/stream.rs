//! Out-of-core edge streaming: the [`EdgeStream`] trait and its sources.
//!
//! A stream delivers a graph's edges in bounded-size chunks: consumers see
//! at most `budget` edges in memory at a time, which is what lets the
//! streaming partitioners run over graphs larger than RAM. Three sources
//! cover the repo's ingestion paths:
//!
//! * [`CsrEdgeStream`] — an in-memory [`CsrGraph`](tlp_graph::CsrGraph)
//!   (or any [`GraphView`]), optionally in a custom
//!   arrival order (how the materialized partitioners are now plumbed);
//! * [`BinaryEdgeStream`] — the `.tlpg` edge section, read chunk by chunk
//!   straight off disk with checksum verification at the end;
//! * [`TextEdgeStream`] — a SNAP-style text edge list, parsed and interned
//!   on the fly (vertex state is O(n); edge state is O(budget)).

use crate::faults::FaultFile;
use crate::format::{SectionHasher, CHUNK_EDGES};
use crate::reader::{decode_edge, StoreReader};
use crate::StoreError;
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::path::Path;
use tlp_graph::{Edge, EdgeId, GraphView, VertexId};

/// What a stream source knows about the graph before the edges arrive.
#[derive(Clone, Debug, Default)]
pub struct StreamMeta {
    /// Number of vertices, when known up front (CSR and binary sources).
    pub num_vertices: Option<usize>,
    /// Number of edges, when known up front.
    pub num_edges: Option<usize>,
    /// Exact final degrees, when the source has them (CSR and binary
    /// sources; degree-based consumers like DBH require these).
    pub degrees: Option<Vec<u32>>,
}

/// Chunked, budget-bounded edge iteration.
///
/// `next_chunk` clears `buf` and fills it with up to [`EdgeStream::budget`]
/// edges; returning `Ok(0)` signals exhaustion. A budget of `usize::MAX`
/// degenerates to the materialized path (one chunk holding every edge).
pub trait EdgeStream {
    /// Metadata the source knows before streaming.
    fn meta(&self) -> &StreamMeta;

    /// The buffer budget in edges (maximum chunk length).
    fn budget(&self) -> usize;

    /// Fills `buf` with the next chunk. `Ok(0)` = end of stream.
    ///
    /// # Errors
    ///
    /// Source-specific [`StoreError`]s (I/O, checksum, parse).
    fn next_chunk(&mut self, buf: &mut Vec<Edge>) -> Result<usize, StoreError>;
}

/// Drives a stream to completion, invoking `consume` per chunk. Returns
/// `(edges_seen, peak_buffer)` — the peak is what the `--stream-budget`
/// bound promises to cap.
///
/// # Errors
///
/// Propagates the first error from the stream or the consumer.
pub fn for_each_chunk<S, F>(stream: &mut S, mut consume: F) -> Result<(usize, usize), StoreError>
where
    S: EdgeStream + ?Sized,
    F: FnMut(&[Edge]) -> Result<(), StoreError>,
{
    let mut buf = Vec::new();
    let mut seen = 0usize;
    let mut peak = 0usize;
    loop {
        let got = stream.next_chunk(&mut buf)?;
        if got == 0 {
            return Ok((seen, peak));
        }
        peak = peak.max(buf.len());
        seen += got;
        tlp_obs::counter("store.chunk", 1);
        tlp_obs::counter("store.chunk_edges", got as u64);
        consume(&buf)?;
    }
}

/// Streams an in-memory graph's edges, optionally in a custom order.
#[derive(Debug)]
pub struct CsrEdgeStream<'a> {
    graph: GraphView<'a>,
    /// Arrival order as edge ids; `None` = natural (`EdgeId`) order.
    order: Option<Vec<EdgeId>>,
    pos: usize,
    budget: usize,
    meta: StreamMeta,
}

impl<'a> CsrEdgeStream<'a> {
    /// Natural (`EdgeId`) order.
    pub fn new(graph: impl Into<GraphView<'a>>, budget: usize) -> Self {
        Self::build(graph.into(), None, budget)
    }

    /// Custom arrival order (each id must be `< num_edges`; ids may repeat
    /// or be omitted — the stream replays exactly what it is given).
    pub fn with_order(
        graph: impl Into<GraphView<'a>>,
        order: Vec<EdgeId>,
        budget: usize,
    ) -> Self {
        Self::build(graph.into(), Some(order), budget)
    }

    fn build(graph: GraphView<'a>, order: Option<Vec<EdgeId>>, budget: usize) -> Self {
        let degrees = graph
            .vertices()
            .map(|v| graph.degree(v) as u32)
            .collect::<Vec<_>>();
        let num_edges = order.as_ref().map_or(graph.num_edges(), Vec::len);
        CsrEdgeStream {
            graph,
            order,
            pos: 0,
            budget: budget.max(1),
            meta: StreamMeta {
                num_vertices: Some(graph.num_vertices()),
                num_edges: Some(num_edges),
                degrees: Some(degrees),
            },
        }
    }
}

impl EdgeStream for CsrEdgeStream<'_> {
    fn meta(&self) -> &StreamMeta {
        &self.meta
    }

    fn budget(&self) -> usize {
        self.budget
    }

    fn next_chunk(&mut self, buf: &mut Vec<Edge>) -> Result<usize, StoreError> {
        buf.clear();
        let total = self.meta.num_edges.expect("csr stream knows its length");
        let take = self.budget.min(total - self.pos);
        match &self.order {
            None => {
                for id in self.pos..self.pos + take {
                    buf.push(self.graph.edge(id as EdgeId));
                }
            }
            Some(order) => {
                for &id in &order[self.pos..self.pos + take] {
                    buf.push(self.graph.edge(id));
                }
            }
        }
        self.pos += take;
        Ok(take)
    }
}

/// Streams the edge section of a `.tlpg` file straight off disk.
///
/// Edges are validated (canonical form, endpoint bounds, global order) as
/// they are decoded; the section checksum is verified once the last chunk
/// has been read, so a flipped byte surfaces as a typed error before the
/// stream reports completion.
#[derive(Debug)]
pub struct BinaryEdgeStream {
    reader: BufReader<FaultFile>,
    remaining: usize,
    num_vertices: usize,
    prev: Option<Edge>,
    checksum: SectionHasher,
    declared_checksum: u64,
    checksum_verified: bool,
    budget: usize,
    meta: StreamMeta,
    io_buf: Vec<u8>,
}

impl BinaryEdgeStream {
    /// Opens `path` and positions the stream at its edge section.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from validating the header/framing.
    pub fn open(path: &Path, budget: usize) -> Result<Self, StoreError> {
        let store = StoreReader::open(path)?;
        Self::from_reader(&store, budget)
    }

    /// Builds a stream from an already opened [`StoreReader`].
    ///
    /// # Errors
    ///
    /// [`StoreError`] from reading the degree section or reopening the file.
    pub fn from_reader(store: &StoreReader, budget: usize) -> Result<Self, StoreError> {
        let degrees = store.read_degrees()?;
        let header = store.header();
        let reader = store.reader_at(store.edges_payload_pos())?;
        let budget = budget.max(1);
        Ok(BinaryEdgeStream {
            reader,
            remaining: header.num_edges as usize,
            num_vertices: header.num_vertices as usize,
            prev: None,
            checksum: store.section_hasher(),
            declared_checksum: store.edges_checksum(),
            checksum_verified: false,
            budget,
            meta: StreamMeta {
                num_vertices: Some(header.num_vertices as usize),
                num_edges: Some(header.num_edges as usize),
                degrees: Some(degrees),
            },
            io_buf: vec![0u8; 8 * budget.min(CHUNK_EDGES)],
        })
    }
}

impl EdgeStream for BinaryEdgeStream {
    fn meta(&self) -> &StreamMeta {
        &self.meta
    }

    fn budget(&self) -> usize {
        self.budget
    }

    fn next_chunk(&mut self, buf: &mut Vec<Edge>) -> Result<usize, StoreError> {
        buf.clear();
        if self.remaining == 0 {
            if !self.checksum_verified {
                self.checksum_verified = true;
                let actual = self.checksum.value();
                if actual != self.declared_checksum {
                    return Err(StoreError::ChecksumMismatch {
                        section: "edges",
                        expected: self.declared_checksum,
                        actual,
                    });
                }
            }
            return Ok(0);
        }
        let mut take = self.budget.min(self.remaining);
        while take > 0 {
            let batch = take.min(self.io_buf.len() / 8);
            let bytes = &mut self.io_buf[..8 * batch];
            crate::format::read_exact_or_truncated(&mut self.reader, bytes, "edge block")?;
            self.checksum.update(bytes);
            for pair in bytes.chunks_exact(8) {
                let u = u32::from_le_bytes(pair[0..4].try_into().expect("4 bytes"));
                let v = u32::from_le_bytes(pair[4..8].try_into().expect("4 bytes"));
                let edge = decode_edge(u, v, self.num_vertices, self.prev)?;
                self.prev = Some(edge);
                buf.push(edge);
            }
            self.remaining -= batch;
            take -= batch;
        }
        // The last chunk is already decoded into `buf`; verify the section
        // checksum now so corruption surfaces before that chunk is reported.
        if self.remaining == 0 {
            self.checksum_verified = true;
            let actual = self.checksum.value();
            if actual != self.declared_checksum {
                return Err(StoreError::ChecksumMismatch {
                    section: "edges",
                    expected: self.declared_checksum,
                    actual,
                });
            }
        }
        Ok(buf.len())
    }
}

/// Streams a SNAP-style text edge list, interning raw ids on the fly.
///
/// Matches [`tlp_graph::io::read_edge_list`]'s tolerance (comments, extra
/// columns, self-loops dropped) **except** duplicate edges, which a
/// one-pass bounded-memory stream cannot detect; callers needing exact
/// parity with the materialized parse should convert to the binary format
/// first (`tlp-convert`), which canonicalizes once.
#[derive(Debug)]
pub struct TextEdgeStream {
    reader: BufReader<FaultFile>,
    remap: HashMap<u64, VertexId>,
    line_no: usize,
    done: bool,
    budget: usize,
    meta: StreamMeta,
}

impl TextEdgeStream {
    /// Opens a text edge list for streaming.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the file cannot be opened.
    pub fn open(path: &Path, budget: usize) -> Result<Self, StoreError> {
        let file = FaultFile::open(path).map_err(StoreError::Io)?;
        Ok(TextEdgeStream {
            reader: BufReader::new(file),
            remap: HashMap::new(),
            line_no: 0,
            done: false,
            budget: budget.max(1),
            meta: StreamMeta::default(),
        })
    }

    /// Number of distinct vertices interned so far.
    pub fn vertices_seen(&self) -> usize {
        self.remap.len()
    }

    fn intern(&mut self, raw: u64) -> Result<VertexId, StoreError> {
        if let Some(&id) = self.remap.get(&raw) {
            return Ok(id);
        }
        let id = VertexId::try_from(self.remap.len())
            .map_err(|_| StoreError::Corrupt("more than u32::MAX distinct vertices".into()))?;
        self.remap.insert(raw, id);
        Ok(id)
    }
}

impl EdgeStream for TextEdgeStream {
    fn meta(&self) -> &StreamMeta {
        &self.meta
    }

    fn budget(&self) -> usize {
        self.budget
    }

    fn next_chunk(&mut self, buf: &mut Vec<Edge>) -> Result<usize, StoreError> {
        buf.clear();
        if self.done {
            return Ok(0);
        }
        let mut line = String::new();
        while buf.len() < self.budget {
            line.clear();
            let read = self.reader.read_line(&mut line).map_err(StoreError::Io)?;
            if read == 0 {
                self.done = true;
                break;
            }
            self.line_no += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
                continue;
            }
            let mut fields = trimmed.split_whitespace();
            let a = parse_vertex(fields.next(), self.line_no, "source vertex")?;
            let b = parse_vertex(fields.next(), self.line_no, "target vertex")?;
            if a == b {
                continue; // self-loop, dropped like the materialized parser
            }
            let a = self.intern(a)?;
            let b = self.intern(b)?;
            buf.push(Edge::new(a, b));
        }
        Ok(buf.len())
    }
}

fn parse_vertex(field: Option<&str>, line: usize, what: &str) -> Result<u64, StoreError> {
    let text = field.ok_or_else(|| StoreError::Manifest {
        line,
        message: format!("missing {what}"),
    })?;
    text.parse().map_err(|_| StoreError::Manifest {
        line,
        message: format!("{what} is not an unsigned integer: {text:?}"),
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tlp_graph::{CsrGraph, GraphBuilder};

    fn graph() -> CsrGraph {
        GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)])
            .build()
    }

    #[test]
    fn csr_stream_respects_budget_and_covers_all_edges() {
        let g = graph();
        for budget in [1usize, 2, 3, usize::MAX] {
            let mut stream = CsrEdgeStream::new(&g, budget);
            let mut all = Vec::new();
            let (seen, peak) = for_each_chunk(&mut stream, |chunk| {
                all.extend_from_slice(chunk);
                Ok(())
            })
            .unwrap();
            assert_eq!(seen, g.num_edges());
            assert!(peak <= budget.min(g.num_edges()).max(1));
            assert_eq!(all, g.edges().to_vec());
        }
    }

    #[test]
    fn csr_stream_with_order_replays_the_order() {
        let g = graph();
        let order: Vec<EdgeId> = vec![4, 0, 2];
        let mut stream = CsrEdgeStream::with_order(&g, order.clone(), 2);
        let mut all = Vec::new();
        for_each_chunk(&mut stream, |chunk| {
            all.extend_from_slice(chunk);
            Ok(())
        })
        .unwrap();
        let expected: Vec<Edge> = order.iter().map(|&id| g.edge(id)).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn csr_stream_meta_has_exact_degrees() {
        let g = graph();
        let stream = CsrEdgeStream::new(&g, 64);
        let degrees = stream.meta().degrees.as_ref().unwrap().clone();
        for v in g.vertices() {
            assert_eq!(degrees[v as usize] as usize, g.degree(v));
        }
    }

    #[test]
    fn text_stream_parses_and_interns() {
        let dir = std::env::temp_dir().join(format!("tlp-store-ts-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        std::fs::write(&path, "# header\n10 20\n20 30\n5 5\n30 10 999\n").unwrap();

        let mut stream = TextEdgeStream::open(&path, 2).unwrap();
        let mut all = Vec::new();
        let (seen, peak) = for_each_chunk(&mut stream, |chunk| {
            all.extend_from_slice(chunk);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 3); // self-loop dropped
        assert!(peak <= 2);
        assert_eq!(stream.vertices_seen(), 3);
        // 10 -> 0, 20 -> 1, 30 -> 2 (first-seen interning).
        assert_eq!(all, vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(0, 2)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn text_stream_reports_parse_errors_with_line() {
        let dir = std::env::temp_dir().join(format!("tlp-store-tp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.txt");
        std::fs::write(&path, "1 2\nnot numbers\n").unwrap();
        let mut stream = TextEdgeStream::open(&path, 16).unwrap();
        let mut buf = Vec::new();
        let err = stream.next_chunk(&mut buf).unwrap_err();
        assert!(matches!(err, StoreError::Manifest { line: 2, .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
