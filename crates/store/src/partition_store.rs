//! On-disk partition stores: per-partition edge segments plus a manifest
//! from which every headline metric is recomputable.
//!
//! A store directory holds one segment file per partition (the edges that
//! partition owns, in canonical order) and a `MANIFEST.tlp` describing the
//! segments together with the replica/ownership summary (`Σ_k |V(P_k)|`
//! and the covered-vertex count). Replication factor and balance are
//! recomputable **from the manifest alone**; loading the segments
//! reconstructs the exact `(graph, assignment)` pair, so the full
//! [`PartitionMetrics`] — including the paper's Claim 1 modularity — round
//! trips bit-identically.
//!
//! The manifest is a versioned, line-oriented text format parsed by this
//! module (the vendored `serde_json` is serialize-only, so JSON is not an
//! option for data we must read back).
//!
//! # Crash safety
//!
//! Stores are written transactionally: every segment file is staged through
//! a temp file and atomically renamed into place, and the manifest — the
//! *commit record* — is written last, the same way. A crash at any point
//! therefore leaves either a committed store (manifest present, all
//! segments it names present and checksummed) or an uncommitted directory
//! with no manifest. [`PartitionStoreReader::open`] detects the latter
//! (segment data present, manifest missing or unreadable), renames the
//! whole directory aside to `<dir>.quarantine[.N]`, and reports
//! [`StoreError::TornStore`] — a torn store is never parsed as data and
//! never silently shadows a later rewrite.

use crate::atomic::atomic_write;
use crate::format::Checksum;
use crate::StoreError;
use std::io::Write;
use std::path::{Path, PathBuf};
use tlp_core::{EdgePartition, PartitionId, PartitionMetrics};
use tlp_graph::{CsrGraph, Edge, GraphView};

/// Name of the manifest file inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST.tlp";
/// First line of a valid manifest.
const MANIFEST_HEADER: &str = "tlp-partition-store v1";
/// Magic prefix of a segment file.
const SEGMENT_MAGIC: [u8; 8] = *b"TLPSEG\x00\x01";

/// One per-partition edge segment as recorded in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentEntry {
    /// The partition this segment holds.
    pub partition: PartitionId,
    /// File name inside the store directory.
    pub file: String,
    /// Number of edges in the segment.
    pub edges: usize,
    /// FNV-1a 64 checksum of the segment's edge payload.
    pub checksum: u64,
}

/// The parsed replica/ownership manifest of a partition store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionManifest {
    /// Number of partitions `p`.
    pub num_partitions: usize,
    /// Number of vertices of the partitioned graph (including isolated).
    pub num_vertices: usize,
    /// Number of edges of the partitioned graph.
    pub num_edges: usize,
    /// Vertices incident to at least one edge (the RF denominator).
    pub covered_vertices: usize,
    /// `Σ_k |V(P_k)|` (the RF numerator).
    pub total_replicas: usize,
    /// One entry per partition, ordered by partition id.
    pub segments: Vec<SegmentEntry>,
}

impl PartitionManifest {
    /// Replication factor recomputed purely from the manifest, delegating
    /// to the canonical [`PartitionMetrics::replication_factor_of`] — the
    /// exact expression the live run uses, so the value is bit-identical.
    pub fn replication_factor(&self) -> f64 {
        PartitionMetrics::replication_factor_of(self.total_replicas, self.covered_vertices)
    }

    /// Load balance recomputed purely from the manifest, delegating to the
    /// canonical [`PartitionMetrics::balance_of`] (max segment size over
    /// ideal `m / p`).
    pub fn balance(&self) -> f64 {
        let max_edges = self.segments.iter().map(|s| s.edges).max().unwrap_or(0);
        PartitionMetrics::balance_of(max_edges, self.num_edges, self.num_partitions)
    }

    /// Renders the manifest in its on-disk format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(MANIFEST_HEADER);
        out.push('\n');
        out.push_str(&format!("partitions {}\n", self.num_partitions));
        out.push_str(&format!("vertices {}\n", self.num_vertices));
        out.push_str(&format!("edges {}\n", self.num_edges));
        out.push_str(&format!("covered {}\n", self.covered_vertices));
        out.push_str(&format!("replicas {}\n", self.total_replicas));
        for s in &self.segments {
            out.push_str(&format!(
                "segment {} {} {} {:016x}\n",
                s.partition, s.file, s.edges, s.checksum
            ));
        }
        out.push_str("end\n");
        out
    }

    /// Parses a manifest from its on-disk text.
    ///
    /// # Errors
    ///
    /// [`StoreError::Manifest`] naming the offending line, or
    /// [`StoreError::Truncated`] if the `end` sentinel is missing.
    pub fn parse(text: &str) -> Result<PartitionManifest, StoreError> {
        let bad = |line: usize, message: String| StoreError::Manifest { line, message };
        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));

        let (line, header) = lines
            .next()
            .ok_or(StoreError::Truncated { what: "manifest" })?;
        if header.trim() != MANIFEST_HEADER {
            return Err(bad(line, format!("expected {MANIFEST_HEADER:?}")));
        }

        let mut fields: [Option<usize>; 5] = [None; 5];
        const NAMES: [&str; 5] = ["partitions", "vertices", "edges", "covered", "replicas"];
        let mut segments: Vec<SegmentEntry> = Vec::new();
        let mut ended = false;

        for (line, raw) in lines {
            let tokens: Vec<&str> = raw.split_whitespace().collect();
            match tokens.as_slice() {
                [] => continue,
                ["end"] => {
                    ended = true;
                    break;
                }
                [name, value] if NAMES.contains(name) => {
                    let idx = NAMES.iter().position(|n| n == name).expect("checked");
                    let parsed: usize = value
                        .parse()
                        .map_err(|_| bad(line, format!("{name} is not an integer: {value:?}")))?;
                    if fields[idx].replace(parsed).is_some() {
                        return Err(bad(line, format!("duplicate {name} line")));
                    }
                }
                ["segment", k, file, edges, checksum] => {
                    let partition: PartitionId = k
                        .parse()
                        .map_err(|_| bad(line, format!("bad partition id {k:?}")))?;
                    let edges: usize = edges
                        .parse()
                        .map_err(|_| bad(line, format!("bad edge count {edges:?}")))?;
                    let checksum = u64::from_str_radix(checksum, 16)
                        .map_err(|_| bad(line, format!("bad checksum {checksum:?}")))?;
                    if partition as usize != segments.len() {
                        return Err(bad(
                            line,
                            format!(
                                "segment {partition} out of order (expected {})",
                                segments.len()
                            ),
                        ));
                    }
                    segments.push(SegmentEntry {
                        partition,
                        file: (*file).to_string(),
                        edges,
                        checksum,
                    });
                }
                _ => return Err(bad(line, format!("unrecognized line {raw:?}"))),
            }
        }
        if !ended {
            return Err(StoreError::Truncated { what: "manifest" });
        }
        let [partitions, vertices, edges, covered, replicas] = fields;
        let require =
            |name: &str, v: Option<usize>| v.ok_or_else(|| bad(0, format!("missing {name} line")));
        let manifest = PartitionManifest {
            num_partitions: require("partitions", partitions)?,
            num_vertices: require("vertices", vertices)?,
            num_edges: require("edges", edges)?,
            covered_vertices: require("covered", covered)?,
            total_replicas: require("replicas", replicas)?,
            segments,
        };
        if manifest.segments.len() != manifest.num_partitions {
            return Err(bad(
                0,
                format!(
                    "manifest declares {} partitions but lists {} segments",
                    manifest.num_partitions,
                    manifest.segments.len()
                ),
            ));
        }
        let listed: usize = manifest.segments.iter().map(|s| s.edges).sum();
        if listed != manifest.num_edges {
            return Err(bad(
                0,
                format!(
                    "segment edge counts sum to {listed}, manifest declares {}",
                    manifest.num_edges
                ),
            ));
        }
        Ok(manifest)
    }
}

/// Writes `partition` of `graph` as an on-disk partition store in `dir`.
///
/// One segment file per partition plus `MANIFEST.tlp`. Every file is
/// written atomically (temp + fsync + rename), and the manifest is written
/// last as the commit record: a crash mid-write leaves an uncommitted
/// directory that [`PartitionStoreReader::open`] quarantines instead of
/// parsing. Returns the written manifest.
///
/// # Errors
///
/// [`StoreError::Corrupt`] if the partition does not cover the graph,
/// [`StoreError::Io`] on write failures.
pub fn write_partition_store<'a>(
    dir: &Path,
    graph: impl Into<GraphView<'a>>,
    partition: &EdgePartition,
) -> Result<PartitionManifest, StoreError> {
    let graph = graph.into();
    if partition.num_edges() != graph.num_edges() {
        return Err(StoreError::Corrupt(format!(
            "partition covers {} edges but graph has {}",
            partition.num_edges(),
            graph.num_edges()
        )));
    }
    std::fs::create_dir_all(dir).map_err(StoreError::Io)?;
    // A rewrite must not look committed while its segments are being
    // replaced: retract the commit record first.
    match std::fs::remove_file(dir.join(MANIFEST_NAME)) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(StoreError::Io(e)),
    }
    let metrics = PartitionMetrics::compute(graph, partition);
    let p = partition.num_partitions();

    let mut segments = Vec::with_capacity(p);
    for k in 0..p {
        let file = format!("part-{k:05}.seg");
        let seg_path = dir.join(&file);
        let edge_count = metrics.edge_counts[k];
        let mut checksum = Checksum::new();

        atomic_write(&seg_path, |out| {
            out.write_all(&SEGMENT_MAGIC).map_err(StoreError::Io)?;
            out.write_all(&(k as u32).to_le_bytes())
                .map_err(StoreError::Io)?;
            out.write_all(&0u32.to_le_bytes()).map_err(StoreError::Io)?;
            out.write_all(&(edge_count as u64).to_le_bytes())
                .map_err(StoreError::Io)?;

            let mut written = 0usize;
            for (eid, edge) in graph.edge_iter().enumerate() {
                if partition.partition_of(eid as u32) as usize != k {
                    continue;
                }
                let mut pair = [0u8; 8];
                pair[0..4].copy_from_slice(&edge.source().to_le_bytes());
                pair[4..8].copy_from_slice(&edge.target().to_le_bytes());
                checksum.update(&pair);
                out.write_all(&pair).map_err(StoreError::Io)?;
                written += 1;
            }
            debug_assert_eq!(written, edge_count);
            out.write_all(&checksum.value().to_le_bytes())
                .map_err(StoreError::Io)
        })?;

        segments.push(SegmentEntry {
            partition: k as PartitionId,
            file,
            edges: edge_count,
            checksum: checksum.value(),
        });
    }

    let manifest = PartitionManifest {
        num_partitions: p,
        num_vertices: graph.num_vertices(),
        num_edges: graph.num_edges(),
        covered_vertices: metrics.covered_vertices,
        total_replicas: metrics.total_replicas,
        segments,
    };
    // Commit record: only after this rename is the store readable.
    atomic_write(&dir.join(MANIFEST_NAME), |out| {
        out.write_all(manifest.render().as_bytes())
            .map_err(StoreError::Io)
    })?;
    Ok(manifest)
}

/// True if `dir` holds partition-store content (segments or in-flight temp
/// files) without necessarily having a manifest.
fn has_store_content(dir: &Path) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    entries.flatten().any(|entry| {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        name.starts_with("part-") || name.ends_with(".tmp")
    })
}

/// Renames `dir` aside to `<dir>.quarantine` (or `.quarantine.N` if taken).
fn quarantine_dir(dir: &Path) -> Result<PathBuf, StoreError> {
    let base = {
        let mut name = dir.file_name().unwrap_or_default().to_os_string();
        name.push(".quarantine");
        dir.with_file_name(name)
    };
    let mut target = base.clone();
    let mut n = 0u32;
    while target.exists() {
        n += 1;
        if n > 1000 {
            return Err(StoreError::Corrupt(format!(
                "too many quarantined stores next to {}",
                dir.display()
            )));
        }
        let mut name = base.file_name().unwrap_or_default().to_os_string();
        name.push(format!(".{n}"));
        target = base.with_file_name(name);
    }
    std::fs::rename(dir, &target).map_err(StoreError::Io)?;
    Ok(target)
}

/// Reader over an on-disk partition store.
#[derive(Debug)]
pub struct PartitionStoreReader {
    dir: PathBuf,
    manifest: PartitionManifest,
}

impl PartitionStoreReader {
    /// Opens a store directory and parses its manifest.
    ///
    /// A directory holding segment data but no readable commit record (the
    /// writer crashed before or while writing `MANIFEST.tlp`) is a *torn
    /// store*: it is renamed aside to `<dir>.quarantine[.N]` and reported
    /// as [`StoreError::TornStore`], never parsed as data.
    ///
    /// # Errors
    ///
    /// [`StoreError::TornStore`] for an uncommitted/corrupt store (after
    /// quarantining it), [`StoreError::Io`] if the directory itself is
    /// missing or unreadable.
    pub fn open(dir: &Path) -> Result<PartitionStoreReader, StoreError> {
        let manifest = match std::fs::read_to_string(dir.join(MANIFEST_NAME)) {
            Ok(text) => match PartitionManifest::parse(&text) {
                Ok(manifest) => manifest,
                Err(cause) => return Err(Self::quarantine(dir, cause)),
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && has_store_content(dir) => {
                return Err(Self::quarantine(
                    dir,
                    StoreError::Manifest {
                        line: 0,
                        message: "commit record MANIFEST.tlp is missing".into(),
                    },
                ));
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        Ok(PartitionStoreReader {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// Quarantines a torn store and wraps `cause` in the typed error.
    fn quarantine(dir: &Path, cause: StoreError) -> StoreError {
        match quarantine_dir(dir) {
            Ok(quarantined) => StoreError::TornStore {
                quarantined,
                cause: Box::new(cause),
            },
            Err(rename_err) => rename_err,
        }
    }

    /// The parsed manifest.
    pub fn manifest(&self) -> &PartitionManifest {
        &self.manifest
    }

    /// Loads every segment and reconstructs the exact `(graph, assignment)`
    /// pair the store was written from.
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`]s for missing/corrupt segments or inconsistent
    /// edge sets.
    pub fn load(&self) -> Result<(CsrGraph, EdgePartition), StoreError> {
        let labeled = self.load_labeled()?;
        let edges: Vec<Edge> = labeled.iter().map(|&(e, _)| e).collect();
        let assignment: Vec<PartitionId> = labeled.iter().map(|&(_, pid)| pid).collect();
        let graph = CsrGraph::from_sorted_canonical_edges(self.manifest.num_vertices, edges)?;
        let partition = EdgePartition::new(self.manifest.num_partitions, assignment)
            .map_err(|e| StoreError::Corrupt(format!("invalid stored assignment: {e}")))?;
        Ok((graph, partition))
    }

    /// Loads only the edge assignment, validated against an existing
    /// `graph` instead of rebuilding a CSR from the segments. Edge `i` of
    /// the canonical table must appear in exactly one segment; the
    /// returned partition maps it to that segment's id.
    ///
    /// This is the zero-copy companion of [`PartitionStoreReader::load`]:
    /// a service holding a `.tlpg` v2 arena can pair it with the store's
    /// assignment without ever materializing a second copy of the graph.
    ///
    /// # Errors
    ///
    /// Everything [`PartitionStoreReader::load`] reports, plus
    /// [`StoreError::Corrupt`] when the stored edge set differs from
    /// `graph`'s (the store and the graph file do not belong together).
    pub fn load_assignment<'a>(
        &self,
        graph: impl Into<GraphView<'a>>,
    ) -> Result<EdgePartition, StoreError> {
        let graph = graph.into();
        let labeled = self.load_labeled()?;
        if labeled.len() != graph.num_edges() {
            return Err(StoreError::Corrupt(format!(
                "store holds {} edges but the graph has {}",
                labeled.len(),
                graph.num_edges()
            )));
        }
        // Both sides are in canonical sorted order, so edge ids line up.
        for (eid, (&(stored, _), edge)) in labeled.iter().zip(graph.edge_iter()).enumerate() {
            if stored != edge {
                return Err(StoreError::Corrupt(format!(
                    "edge {eid} is {:?} in the store but {:?} in the graph — \
                     store and graph do not belong together",
                    stored.endpoints(),
                    edge.endpoints()
                )));
            }
        }
        let assignment: Vec<PartitionId> = labeled.iter().map(|&(_, pid)| pid).collect();
        EdgePartition::new(self.manifest.num_partitions, assignment)
            .map_err(|e| StoreError::Corrupt(format!("invalid stored assignment: {e}")))
    }

    /// Reads every segment, returning `(edge, partition)` pairs in
    /// canonical edge order, with duplicate edges rejected.
    fn load_labeled(&self) -> Result<Vec<(Edge, PartitionId)>, StoreError> {
        let m = self.manifest.num_edges;
        let mut labeled: Vec<(Edge, PartitionId)> = Vec::with_capacity(m);
        for entry in &self.manifest.segments {
            self.read_segment(entry, &mut labeled)?;
        }
        labeled.sort_unstable();
        for pair in labeled.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(StoreError::Corrupt(format!(
                    "edge {:?} appears in partitions {} and {}",
                    pair[0].0, pair[0].1, pair[1].1
                )));
            }
        }
        Ok(labeled)
    }

    /// Recomputes the full quality metrics (RF, balance, per-partition
    /// Claim 1 modularity, replica counts) from the stored segments. The
    /// result is bit-identical to [`PartitionMetrics::compute`] on the live
    /// run that wrote the store.
    ///
    /// # Errors
    ///
    /// Propagates [`PartitionStoreReader::load`] errors.
    pub fn recompute_metrics(&self) -> Result<PartitionMetrics, StoreError> {
        let (graph, partition) = self.load()?;
        Ok(PartitionMetrics::compute(&graph, &partition))
    }

    fn read_segment(
        &self,
        entry: &SegmentEntry,
        out: &mut Vec<(Edge, PartitionId)>,
    ) -> Result<(), StoreError> {
        let bytes = std::fs::read(self.dir.join(&entry.file)).map_err(StoreError::Io)?;
        let expected_len = 8 + 4 + 4 + 8 + 8 * entry.edges + 8;
        if bytes.len() < 24 {
            return Err(StoreError::Truncated {
                what: "segment header",
            });
        }
        if bytes[0..8] != SEGMENT_MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&bytes[0..8]);
            return Err(StoreError::BadMagic { found });
        }
        let partition = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if partition != entry.partition {
            return Err(StoreError::Corrupt(format!(
                "segment file {} labels itself partition {partition}, manifest says {}",
                entry.file, entry.partition
            )));
        }
        let count = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
        if count != entry.edges {
            return Err(StoreError::Corrupt(format!(
                "segment {} holds {count} edges, manifest says {}",
                entry.file, entry.edges
            )));
        }
        if bytes.len() != expected_len {
            return Err(StoreError::Truncated {
                what: "segment payload",
            });
        }
        let payload = &bytes[24..24 + 8 * count];
        let declared = u64::from_le_bytes(bytes[expected_len - 8..].try_into().expect("8 bytes"));
        let actual = Checksum::of(payload);
        if declared != actual {
            return Err(StoreError::ChecksumMismatch {
                section: "segment",
                expected: declared,
                actual,
            });
        }
        for pair in payload.chunks_exact(8) {
            let u = u32::from_le_bytes(pair[0..4].try_into().expect("4 bytes"));
            let v = u32::from_le_bytes(pair[4..8].try_into().expect("4 bytes"));
            if u >= v || v as usize >= self.manifest.num_vertices {
                return Err(StoreError::Corrupt(format!(
                    "segment {} contains invalid edge ({u}, {v})",
                    entry.file
                )));
            }
            out.push((Edge::new(u, v), entry.partition));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use tlp_graph::GraphBuilder;

    fn graph_and_partition() -> (CsrGraph, EdgePartition) {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)])
            .build();
        let part = EdgePartition::new(2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        (g, part)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tlp-pstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_load_roundtrip_is_exact() {
        let (g, part) = graph_and_partition();
        let dir = temp_dir("rt");
        let manifest = write_partition_store(&dir, &g, &part).unwrap();
        assert_eq!(manifest.num_partitions, 2);

        let reader = PartitionStoreReader::open(&dir).unwrap();
        assert_eq!(reader.manifest(), &manifest);
        let (g2, part2) = reader.load().unwrap();
        assert_eq!(g, g2);
        assert_eq!(part, part2);

        let live = PartitionMetrics::compute(&g, &part);
        assert_eq!(reader.recompute_metrics().unwrap(), live);
        assert_eq!(manifest.replication_factor(), live.replication_factor);
        assert_eq!(manifest.balance(), live.balance);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_text_roundtrip() {
        let (g, part) = graph_and_partition();
        let dir = temp_dir("mt");
        let manifest = write_partition_store(&dir, &g, &part).unwrap();
        let reparsed = PartitionManifest::parse(&manifest.render()).unwrap();
        assert_eq!(manifest, reparsed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_rejects_malformed_input() {
        assert!(matches!(
            PartitionManifest::parse("not a manifest\n"),
            Err(StoreError::Manifest { line: 1, .. })
        ));
        // Missing `end` sentinel = truncated.
        let text = "tlp-partition-store v1\npartitions 1\nvertices 2\nedges 1\ncovered 2\nreplicas 2\nsegment 0 part-00000.seg 1 0000000000000000\n";
        assert!(matches!(
            PartitionManifest::parse(text),
            Err(StoreError::Truncated { .. })
        ));
        // Garbage line.
        let text = "tlp-partition-store v1\nwat 3 4\nend\n";
        assert!(matches!(
            PartitionManifest::parse(text),
            Err(StoreError::Manifest { line: 2, .. })
        ));
    }

    #[test]
    fn segment_corruption_is_typed() {
        let (g, part) = graph_and_partition();
        let dir = temp_dir("sc");
        write_partition_store(&dir, &g, &part).unwrap();

        // Flip one payload byte in segment 0.
        let seg = dir.join("part-00000.seg");
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes[25] ^= 0x01;
        std::fs::write(&seg, &bytes).unwrap();
        let reader = PartitionStoreReader::open(&dir).unwrap();
        let err = reader.load().unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::ChecksumMismatch { .. } | StoreError::Corrupt(_)
            ),
            "unexpected error {err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_segment_is_typed() {
        let (g, part) = graph_and_partition();
        let dir = temp_dir("ts");
        write_partition_store(&dir, &g, &part).unwrap();
        let seg = dir.join("part-00001.seg");
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 9]).unwrap();
        let reader = PartitionStoreReader::open(&dir).unwrap();
        assert!(matches!(
            reader.load().unwrap_err(),
            StoreError::Truncated { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
