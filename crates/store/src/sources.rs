//! Disk-backed [`EdgeSource`] implementations over the [`EdgeStream`]
//! family, plus a budgeted wrapper for in-memory graphs.
//!
//! These adapters are what lets the unified pipeline run any streaming
//! algorithm out-of-core: a `.tlpg` file or text edge list becomes an
//! `EdgeSource` whose passes are bounded-memory [`BinaryEdgeStream`] /
//! [`TextEdgeStream`] sweeps, while random access (for CSR-only
//! algorithms) either materializes the graph once and caches it, or — in
//! strict streaming mode — refuses with
//! [`SourceError::NeedsRandomAccess`] so capability violations surface as
//! typed errors instead of silent memory blow-ups.

use crate::loaded::LoadedGraph;
use crate::stream::{for_each_chunk, BinaryEdgeStream, CsrEdgeStream, EdgeStream, TextEdgeStream};
use crate::StoreError;
use std::path::{Path, PathBuf};
use tlp_graph::{CsrGraph, Edge, EdgeSource, GraphView, PassStats, SourceError};

impl From<StoreError> for SourceError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::Io(io) => SourceError::Io(io),
            other => SourceError::Other(Box::new(other)),
        }
    }
}

fn run_pass<S: EdgeStream + ?Sized>(
    stream: &mut S,
    sink: &mut dyn FnMut(&[Edge]),
) -> Result<PassStats, SourceError> {
    let (edges, peak_buffer) = for_each_chunk(stream, |chunk| {
        sink(chunk);
        Ok(())
    })?;
    Ok(PassStats { edges, peak_buffer })
}

/// A `.tlpg` binary graph file as an [`EdgeSource`].
///
/// Streaming passes re-open a fresh [`BinaryEdgeStream`] each time, so the
/// canonical edge order replays identically (checksums verified per pass).
/// Random access opens the file as a [`LoadedGraph`] once and caches it —
/// a v2 file is held as a zero-copy arena whose view borrows the file
/// bytes directly, a v1 file is decoded into an owned CSR — unless the
/// source was opened [`strict_streaming`](Self::strict_streaming), in
/// which case random access is refused and only bounded-memory passes are
/// allowed.
#[derive(Debug)]
pub struct BinaryFileSource {
    path: PathBuf,
    budget: usize,
    num_vertices: usize,
    num_edges: usize,
    degrees: Vec<u32>,
    strict: bool,
    cached: Option<LoadedGraph>,
}

impl BinaryFileSource {
    /// Opens the file, reading header and degree metadata (but no edges).
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from validating the file.
    pub fn open(path: &Path, budget: usize) -> Result<Self, StoreError> {
        let stream = BinaryEdgeStream::open(path, budget)?;
        let meta = stream.meta();
        let num_vertices = meta.num_vertices.unwrap_or(0);
        let num_edges = meta.num_edges.unwrap_or(0);
        let degrees = meta.degrees.clone().unwrap_or_default();
        Ok(BinaryFileSource {
            path: path.to_path_buf(),
            budget,
            num_vertices,
            num_edges,
            degrees,
            strict: false,
            cached: None,
        })
    }

    /// Toggles strict streaming: when `true`, random access is refused so
    /// peak edge memory stays `O(budget)`.
    pub fn strict_streaming(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }
}

impl EdgeSource for BinaryFileSource {
    fn describe(&self) -> String {
        format!("tlpg:{}", self.path.display())
    }

    fn num_vertices_hint(&self) -> Option<usize> {
        Some(self.num_vertices)
    }

    fn num_edges_hint(&self) -> Option<usize> {
        Some(self.num_edges)
    }

    fn degrees_hint(&self) -> Option<Vec<u32>> {
        Some(self.degrees.clone())
    }

    fn supports_random_access(&self) -> bool {
        !self.strict
    }

    fn random_access(&mut self) -> Result<GraphView<'_>, SourceError> {
        if self.strict {
            return Err(SourceError::NeedsRandomAccess {
                source: self.describe(),
            });
        }
        if self.cached.is_none() {
            self.cached = Some(LoadedGraph::open(&self.path)?);
        }
        Ok(self
            .cached
            .as_ref()
            .expect("graph cached by the branch above")
            .view())
    }

    fn stream_pass(&mut self, sink: &mut dyn FnMut(&[Edge])) -> Result<PassStats, SourceError> {
        let mut stream = BinaryEdgeStream::open(&self.path, self.budget)?;
        run_pass(&mut stream, sink)
    }
}

/// A SNAP-style text edge list as an [`EdgeSource`].
///
/// Passes parse the file on the fly via [`TextEdgeStream`] (first-seen
/// vertex interning; duplicate edges and self-loops are **not** removed,
/// matching the raw stream semantics). Vertex/edge counts are unknown up
/// front, so consumers that need them must either materialize (random
/// access parses through the canonical deduplicating reader) or fail with
/// [`SourceError::MissingMeta`].
#[derive(Debug)]
pub struct TextFileSource {
    path: PathBuf,
    budget: usize,
    cached: Option<CsrGraph>,
}

impl TextFileSource {
    /// Wraps a text edge-list path; the file is opened lazily per pass.
    pub fn new(path: &Path, budget: usize) -> Self {
        TextFileSource {
            path: path.to_path_buf(),
            budget,
            cached: None,
        }
    }
}

impl EdgeSource for TextFileSource {
    fn describe(&self) -> String {
        format!("text:{}", self.path.display())
    }

    fn num_vertices_hint(&self) -> Option<usize> {
        None
    }

    fn num_edges_hint(&self) -> Option<usize> {
        None
    }

    fn degrees_hint(&self) -> Option<Vec<u32>> {
        None
    }

    fn supports_random_access(&self) -> bool {
        true
    }

    fn random_access(&mut self) -> Result<GraphView<'_>, SourceError> {
        if self.cached.is_none() {
            let loaded = tlp_graph::io::read_edge_list_file(&self.path)
                .map_err(|e| SourceError::Corrupt(e.to_string()))?;
            self.cached = Some(loaded.graph);
        }
        Ok(self
            .cached
            .as_ref()
            .expect("graph cached by the branch above")
            .view())
    }

    fn stream_pass(&mut self, sink: &mut dyn FnMut(&[Edge])) -> Result<PassStats, SourceError> {
        let mut stream = TextEdgeStream::open(&self.path, self.budget)?;
        run_pass(&mut stream, sink)
    }
}

/// An in-memory graph exposed with budget-bounded passes.
///
/// Random access is free (the graph is already resident), but streaming
/// passes go through [`CsrEdgeStream`] with the given budget, so chunk
/// sizes — and therefore a streaming algorithm's reported peak buffer —
/// honor the same `--stream-budget` bound as the disk sources.
#[derive(Debug)]
pub struct BudgetedCsrSource<'a> {
    graph: GraphView<'a>,
    budget: usize,
}

impl<'a> BudgetedCsrSource<'a> {
    /// Wraps a shared graph (or view) with a per-pass chunk budget.
    pub fn new(graph: impl Into<GraphView<'a>>, budget: usize) -> Self {
        BudgetedCsrSource {
            graph: graph.into(),
            budget,
        }
    }
}

impl EdgeSource for BudgetedCsrSource<'_> {
    fn describe(&self) -> String {
        format!(
            "csr({} vertices, {} edges, budget {})",
            self.graph.num_vertices(),
            self.graph.num_edges(),
            self.budget
        )
    }

    fn num_vertices_hint(&self) -> Option<usize> {
        Some(self.graph.num_vertices())
    }

    fn num_edges_hint(&self) -> Option<usize> {
        Some(self.graph.num_edges())
    }

    fn degrees_hint(&self) -> Option<Vec<u32>> {
        Some(
            self.graph
                .vertices()
                .map(|v| self.graph.degree(v) as u32)
                .collect(),
        )
    }

    fn supports_random_access(&self) -> bool {
        true
    }

    fn random_access(&mut self) -> Result<GraphView<'_>, SourceError> {
        Ok(self.graph)
    }

    fn stream_pass(&mut self, sink: &mut dyn FnMut(&[Edge])) -> Result<PassStats, SourceError> {
        let mut stream = CsrEdgeStream::new(self.graph, self.budget);
        run_pass(&mut stream, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{write_graph, WriteOptions};
    use std::io::Write as _;
    use tlp_graph::generators::chung_lu;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tlp-sources-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn binary_source_streams_the_canonical_order_and_materializes() {
        let g = chung_lu(400, 1600, 2.2, 5);
        let dir = temp_dir("bin");
        let path = dir.join("g.tlpg");
        write_graph(&path, &g, &WriteOptions::default()).expect("write graph");

        let mut source = BinaryFileSource::open(&path, 64).expect("open");
        assert_eq!(source.num_vertices_hint(), Some(g.num_vertices()));
        assert_eq!(source.num_edges_hint(), Some(g.num_edges()));

        let mut seen = Vec::new();
        let stats = source
            .stream_pass(&mut |chunk| seen.extend_from_slice(chunk))
            .expect("pass");
        assert_eq!(seen, g.edges().to_vec());
        assert_eq!(stats.edges, g.num_edges());
        assert!(stats.peak_buffer <= 64);

        // Second pass replays identically.
        let mut again = Vec::new();
        source
            .stream_pass(&mut |chunk| again.extend_from_slice(chunk))
            .expect("pass 2");
        assert_eq!(again, seen);

        assert!(source.supports_random_access());
        let view = source.random_access().expect("materialize");
        assert_eq!(view.edge_iter().collect::<Vec<_>>(), g.edges().to_vec());
        assert_eq!(view.num_vertices(), g.num_vertices());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_streaming_refuses_random_access() {
        let g = chung_lu(100, 400, 2.2, 9);
        let dir = temp_dir("strict");
        let path = dir.join("g.tlpg");
        write_graph(&path, &g, &WriteOptions::default()).expect("write graph");

        let mut source = BinaryFileSource::open(&path, 32)
            .expect("open")
            .strict_streaming(true);
        assert!(!source.supports_random_access());
        let err = source.random_access().expect_err("must refuse");
        assert!(matches!(err, SourceError::NeedsRandomAccess { .. }));
        // Streaming still works.
        let stats = source.stream_pass(&mut |_| {}).expect("pass");
        assert_eq!(stats.edges, g.num_edges());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn text_source_streams_and_materializes() {
        let dir = temp_dir("text");
        let path = dir.join("g.txt");
        {
            let mut f = std::fs::File::create(&path).expect("create");
            writeln!(f, "# comment").expect("write");
            for (u, v) in [(10, 20), (20, 30), (30, 10), (10, 40)] {
                writeln!(f, "{u}\t{v}").expect("write");
            }
        }
        let mut source = TextFileSource::new(&path, 2);
        assert_eq!(source.num_vertices_hint(), None);
        let mut count = 0usize;
        let stats = source
            .stream_pass(&mut |chunk| count += chunk.len())
            .expect("pass");
        assert_eq!(count, 4);
        assert!(stats.peak_buffer <= 2);
        let graph = source.random_access().expect("materialize");
        assert_eq!(graph.num_edges(), 4);
        assert_eq!(graph.num_vertices(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budgeted_csr_source_bounds_chunks() {
        let g = chung_lu(200, 900, 2.2, 3);
        let mut source = BudgetedCsrSource::new(&g, 17);
        let mut seen = Vec::new();
        let stats = source
            .stream_pass(&mut |chunk| seen.extend_from_slice(chunk))
            .expect("pass");
        assert_eq!(seen, g.edges().to_vec());
        assert!(stats.peak_buffer <= 17);
        let view = source.random_access().expect("ra");
        assert_eq!(view.edge_iter().collect::<Vec<_>>(), g.edges().to_vec());
    }
}
