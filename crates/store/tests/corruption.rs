//! Corruption robustness: every class of damaged store file must surface a
//! typed [`StoreError`], never a panic or a silently wrong graph.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use tlp_graph::generators::erdos_renyi;
use tlp_graph::CsrGraph;
use tlp_store::{write_graph, FormatVersion, LoadedGraph, StoreError, StoreReader, WriteOptions};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_store(graph: &CsrGraph) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tlp-store-corruption-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.tlpg");
    write_graph(&path, graph, &WriteOptions::default()).unwrap();
    path
}

fn temp_store_v1(graph: &CsrGraph) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tlp-store-corruption-v1-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.tlpg");
    let options = WriteOptions {
        version: FormatVersion::V1,
        ..WriteOptions::default()
    };
    write_graph(&path, graph, &options).unwrap();
    path
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

fn test_graph() -> CsrGraph {
    erdos_renyi(200, 800, 7)
}

#[test]
fn truncated_file_is_typed_not_a_panic() {
    let g = test_graph();
    let path = temp_store(&g);
    let bytes = std::fs::read(&path).unwrap();
    // Cut at several depths: inside the header, inside the degree section,
    // inside the edge payload, and one byte short of complete.
    for cut in [10, 40, 80, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let result = StoreReader::open(&path).and_then(|r| r.read_graph().map(|_| ()));
        assert!(
            matches!(
                result,
                Err(StoreError::Truncated { .. })
                    | Err(StoreError::ChecksumMismatch { .. })
                    | Err(StoreError::Corrupt(_))
            ),
            "cut at {cut}: unexpected {result:?}"
        );
    }
    cleanup(&path);
}

#[test]
fn bad_magic_is_rejected() {
    let g = test_graph();
    let path = temp_store(&g);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0..8].copy_from_slice(b"NOTAGRPH");
    std::fs::write(&path, &bytes).unwrap();
    match StoreReader::open(&path) {
        Err(StoreError::BadMagic { found }) => assert_eq!(&found, b"NOTAGRPH"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
    cleanup(&path);
}

#[test]
fn unsupported_version_is_rejected() {
    let g = test_graph();
    let path = temp_store(&g);
    let mut bytes = std::fs::read(&path).unwrap();
    // Version lives right after the magic; bump it and re-stamp the header
    // checksum so the version check (not the checksum) is what fires.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let checksum = tlp_store::format::Checksum::of(&bytes[0..48]);
    bytes[48..56].copy_from_slice(&checksum.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match StoreReader::open(&path) {
        Err(StoreError::UnsupportedVersion { found }) => assert_eq!(found, 99),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    cleanup(&path);
}

#[test]
fn flipped_payload_byte_fails_a_checksum_v1() {
    let g = test_graph();
    let path = temp_store_v1(&g);
    let clean = std::fs::read(&path).unwrap();
    // The only bytes a flip may legitimately go unnoticed in are the 4
    // reserved bytes of each section frame (ignored by readers for forward
    // compatibility). v1 frames sit at offsets 56 and 56+24+4n.
    let degs_frame = 56usize;
    let edge_frame = degs_frame + 24 + 4 * g.num_vertices();
    let reserved = |o: usize| {
        (degs_frame + 4..degs_frame + 8).contains(&o)
            || (edge_frame + 4..edge_frame + 8).contains(&o)
    };
    // Flip a byte in every other region past the header. Anywhere in a
    // payload the section checksum must catch it; in a frame the structural
    // checks fire.
    for offset in (60..clean.len()).step_by(101).filter(|&o| !reserved(o)) {
        let mut bytes = clean.clone();
        bytes[offset] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let result = StoreReader::open(&path).and_then(|r| r.read_graph().map(|_| ()));
        assert!(
            result.is_err(),
            "flip at {offset} was not detected: {result:?}"
        );
    }
    cleanup(&path);
}

#[test]
fn flipped_payload_byte_fails_a_checksum_v2() {
    let g = test_graph();
    let path = temp_store(&g);
    let clean = std::fs::read(&path).unwrap();
    // v2 layout: OFFS | ADJV | ADJE | EDGE frames, each with 4 reserved
    // bytes at frame+4. The zero-copy arena open (the production v2 path)
    // checksums every section, so a flip anywhere else must surface.
    let (n, m) = (g.num_vertices(), g.num_edges());
    let mut frames = Vec::new();
    let mut pos = 56usize;
    for payload in [8 * (n + 1), 8 * m, 8 * m, 8 * m] {
        frames.push(pos);
        pos += 24 + payload;
    }
    let reserved = |o: usize| frames.iter().any(|&f| (f + 4..f + 8).contains(&o));
    for offset in (60..clean.len()).step_by(101).filter(|&o| !reserved(o)) {
        let mut bytes = clean.clone();
        bytes[offset] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let result = LoadedGraph::open(&path).map(|_| ());
        assert!(
            result.is_err(),
            "flip at {offset} was not detected: {result:?}"
        );
    }
    cleanup(&path);
}

#[test]
fn header_corruption_fails_header_checksum() {
    let g = test_graph();
    let path = temp_store(&g);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[16] ^= 0x01; // inside num_vertices
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        StoreReader::open(&path),
        Err(StoreError::ChecksumMismatch {
            section: "header",
            ..
        })
    ));
    cleanup(&path);
}

#[test]
fn empty_file_is_truncated() {
    let g = test_graph();
    let path = temp_store(&g);
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(
        StoreReader::open(&path),
        Err(StoreError::Truncated { .. })
    ));
    cleanup(&path);
}
