//! Partition-store acceptance: for every generator family and
//! p ∈ {4, 8, 32}, metrics recomputed from the on-disk store must equal the
//! live [`PartitionMetrics`] exactly — including the f64 replication factor,
//! balance, and per-partition Claim 1 modularity, bit for bit.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tlp_core::{EdgePartition, PartitionId, PartitionMetrics};
use tlp_graph::generators::{barabasi_albert, chung_lu, erdos_renyi, genealogy};
use tlp_graph::CsrGraph;
use tlp_store::{write_partition_store, PartitionStoreReader};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tlp-pstore-rt-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A deterministic but non-trivial assignment (hashed, so partitions get
/// uneven sizes and scattered edges — a harder case than round-robin).
fn hashed_partition(graph: &CsrGraph, p: usize, seed: u64) -> EdgePartition {
    let assignment: Vec<PartitionId> = (0..graph.num_edges() as u64)
        .map(|e| (splitmix64(e ^ seed) % p as u64) as PartitionId)
        .collect();
    EdgePartition::new(p, assignment).unwrap()
}

#[test]
fn store_metrics_match_live_metrics_exactly() {
    let families: [(&str, CsrGraph); 4] = [
        ("erdos_renyi", erdos_renyi(600, 2400, 21)),
        ("chung_lu", chung_lu(600, 2400, 2.5, 22)),
        ("barabasi_albert", barabasi_albert(500, 4, 23)),
        ("genealogy", genealogy(400, 1200, 24)),
    ];
    for (family, graph) in &families {
        for p in [4usize, 8, 32] {
            let partition = hashed_partition(graph, p, 0xA5A5 ^ p as u64);
            let live = PartitionMetrics::compute(graph, &partition);

            let dir = temp_dir();
            let manifest = write_partition_store(&dir, graph, &partition).unwrap();
            let reader = PartitionStoreReader::open(&dir).unwrap();

            // Manifest-only metrics: exact f64 equality, no tolerance.
            assert_eq!(
                manifest.replication_factor(),
                live.replication_factor,
                "{family} p={p}: manifest RF diverged"
            );
            assert_eq!(
                reader.manifest().replication_factor(),
                live.replication_factor,
                "{family} p={p}: reparsed RF diverged"
            );
            assert_eq!(
                reader.manifest().balance(),
                live.balance,
                "{family} p={p}: manifest balance diverged"
            );
            let manifest_counts: Vec<usize> =
                reader.manifest().segments.iter().map(|s| s.edges).collect();
            assert_eq!(
                manifest_counts, live.edge_counts,
                "{family} p={p}: per-partition edge counts diverged"
            );

            // Full reload: graph, assignment, and every metric field
            // (including Claim 1 modularity) round-trip bit-identically.
            let (g2, part2) = reader.load().unwrap();
            assert_eq!(&g2, graph, "{family} p={p}: graph diverged");
            assert_eq!(part2, partition, "{family} p={p}: assignment diverged");
            let recomputed = reader.recompute_metrics().unwrap();
            assert_eq!(recomputed, live, "{family} p={p}: metrics diverged");

            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn degenerate_partitions_roundtrip() {
    let graph = erdos_renyi(100, 300, 31);
    // Everything on one partition; and p larger than needed with empties.
    for (p, seed) in [(1usize, 1u64), (64, 2)] {
        let partition = if p == 1 {
            EdgePartition::new(1, vec![0; graph.num_edges()]).unwrap()
        } else {
            hashed_partition(&graph, p, seed)
        };
        let live = PartitionMetrics::compute(&graph, &partition);
        let dir = temp_dir();
        write_partition_store(&dir, &graph, &partition).unwrap();
        let reader = PartitionStoreReader::open(&dir).unwrap();
        assert_eq!(reader.recompute_metrics().unwrap(), live);
        assert_eq!(
            reader.manifest().replication_factor(),
            live.replication_factor
        );
        assert_eq!(reader.manifest().balance(), live.balance);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
