//! Crash-point sweep: inject a fault at every store I/O operation index in
//! turn and assert the on-disk state after each failed write is the
//! previous valid file (graphs, checkpoints) or a quarantined torn store
//! (partition stores) — never silently corrupt data.

#![allow(clippy::unwrap_used)]

use std::path::{Path, PathBuf};
use tlp_core::{EdgePartition, EngineCheckpoint};
use tlp_graph::generators::chung_lu;
use tlp_graph::CsrGraph;
use tlp_store::faults::{self, FaultKind, FaultSchedule};
use tlp_store::{
    read_checkpoint, read_wal, write_checkpoint, write_graph, write_partition_store, FormatVersion,
    LoadedGraph, PartitionStoreReader, StoreError, StoreReader, WriteOptions, WAL_NAME,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlp-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read_back(path: &Path) -> Result<CsrGraph, StoreError> {
    Ok(StoreReader::open(path)?.read_graph()?.graph)
}

/// Reads through [`LoadedGraph`] — the zero-copy arena for v2 files — so
/// the sweeps also cover the production open path for both formats.
fn read_back_zero_copy(path: &Path) -> Result<CsrGraph, StoreError> {
    Ok(LoadedGraph::open(path)?.view().to_csr_graph())
}

/// Removes any `<dir>.quarantine[.N]` siblings left by a quarantining open.
fn sweep_quarantines(dir: &Path) {
    let name = dir.file_name().unwrap().to_string_lossy().to_string();
    let parent = dir.parent().unwrap();
    let Ok(entries) = std::fs::read_dir(parent) else {
        return;
    };
    for entry in entries.flatten() {
        let entry_name = entry.file_name().to_string_lossy().to_string();
        if entry_name.starts_with(&format!("{name}.quarantine")) {
            let _ = std::fs::remove_dir_all(entry.path());
        }
    }
}

#[test]
fn graph_write_sweep_preserves_previous_file() {
    let _guard = faults::test_lock();
    let dir = temp_dir("graph");
    let path = dir.join("g.tlpg");
    let old = chung_lu(120, 480, 2.2, 7);
    let new = chung_lu(120, 480, 2.2, 8);

    for version in [FormatVersion::V1, FormatVersion::V2] {
        let opts = WriteOptions {
            version,
            ..WriteOptions::default()
        };
        write_graph(&path, &old, &opts).unwrap();
        let (counted, total) = faults::count_ops(|| write_graph(&path, &new, &opts));
        counted.unwrap();
        assert!(total > 0, "op counter saw no I/O");
        write_graph(&path, &old, &opts).unwrap(); // restore the "previous" state

        for kind in [FaultKind::Crash, FaultKind::ShortWrite, FaultKind::Enospc] {
            for at_op in 0..total {
                faults::arm(FaultSchedule {
                    at_op,
                    kind,
                    seed: at_op,
                });
                let failed = write_graph(&path, &new, &opts);
                faults::disarm();
                assert!(
                    failed.is_err(),
                    "{version:?} {kind:?} at op {at_op} did not fail the write"
                );
                let survivor = read_back(&path).unwrap_or_else(|e| {
                    panic!("{version:?} {kind:?} at op {at_op}: previous file unreadable: {e}")
                });
                assert_eq!(
                    survivor, old,
                    "{version:?} {kind:?} at op {at_op} corrupted the previous file"
                );
                let arena = read_back_zero_copy(&path).unwrap_or_else(|e| {
                    panic!("{version:?} {kind:?} at op {at_op}: zero-copy open failed: {e}")
                });
                assert_eq!(
                    arena, old,
                    "{version:?} {kind:?} at op {at_op} corrupted the arena view"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn graph_write_bit_flips_are_never_read_back_silently() {
    let _guard = faults::test_lock();
    let dir = temp_dir("flip");
    let path = dir.join("g.tlpg");
    let graph = chung_lu(120, 480, 2.2, 9);

    for version in [FormatVersion::V1, FormatVersion::V2] {
        let opts = WriteOptions {
            version,
            ..WriteOptions::default()
        };
        let (counted, total) = faults::count_ops(|| write_graph(&path, &graph, &opts));
        counted.unwrap();

        for at_op in 0..total {
            faults::arm(FaultSchedule {
                at_op,
                kind: FaultKind::BitFlip,
                seed: 0xC0FF_EE00 ^ at_op,
            });
            let result = write_graph(&path, &graph, &opts);
            faults::disarm();
            // A flip never fails the write itself; whatever got committed
            // must either read back as exactly the written graph (flip
            // landed in slack the reader ignores) or fail with a typed
            // error — silently reading back a *different* graph is the one
            // forbidden outcome. Both the decode path and the zero-copy
            // arena path are held to it.
            result.unwrap();
            if let Ok(g) = read_back(&path) {
                assert_eq!(
                    g, graph,
                    "{version:?}: bit flip at op {at_op} silently changed the graph"
                );
            }
            if let Ok(g) = read_back_zero_copy(&path) {
                assert_eq!(
                    g, graph,
                    "{version:?}: bit flip at op {at_op} silently changed the arena view"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn partition_store_rewrite_sweep_quarantines_torn_stores() {
    let _guard = faults::test_lock();
    let root = temp_dir("pstore");
    let store = root.join("store");
    let graph = chung_lu(120, 480, 2.2, 11);
    let m = graph.num_edges();
    let p = 8;
    let assignment: Vec<u32> = (0..m).map(|e| (e % p) as u32).collect();
    let partition = EdgePartition::new(p, assignment).unwrap();

    write_partition_store(&store, &graph, &partition).unwrap();
    let (counted, total) = faults::count_ops(|| write_partition_store(&store, &graph, &partition));
    counted.unwrap();
    assert!(total > 0, "op counter saw no I/O");

    for kind in [FaultKind::Crash, FaultKind::ShortWrite, FaultKind::Enospc] {
        for at_op in 0..total {
            faults::arm(FaultSchedule {
                at_op,
                kind,
                seed: at_op,
            });
            let failed = write_partition_store(&store, &graph, &partition);
            faults::disarm();
            assert!(
                failed.is_err(),
                "{kind:?} at op {at_op} did not fail the rewrite"
            );
            // The commit record was retracted before the rewrite began, so
            // every crash point leaves an uncommitted store: open must
            // quarantine it, never parse it as data.
            let err = PartitionStoreReader::open(&store).unwrap_err();
            match err {
                StoreError::TornStore {
                    ref quarantined, ..
                } => {
                    assert!(quarantined.exists(), "quarantine target missing");
                    assert!(!store.exists(), "torn store left in place");
                }
                other => panic!("{kind:?} at op {at_op}: expected TornStore, got {other}"),
            }
            sweep_quarantines(&store);
            // Restore a committed store for the next crash point.
            write_partition_store(&store, &graph, &partition).unwrap();
        }
    }

    // Sanity: the restored store round-trips.
    let (g2, p2) = PartitionStoreReader::open(&store).unwrap().load().unwrap();
    assert_eq!(g2, graph);
    assert_eq!(p2, partition);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn serve_flush_sweep_leaves_store_intact_or_quarantined() {
    use tlp_serve::{PartitionService, Request, Response};

    let _guard = faults::test_lock();
    let root = temp_dir("serveflush");
    let store = root.join("store");
    let graph = chung_lu(60, 240, 2.2, 13);
    let m = graph.num_edges();
    let p = 4;
    let assignment: Vec<u32> = (0..m).map(|e| (e % p) as u32).collect();
    let partition = EdgePartition::new(p, assignment).unwrap();

    // Fresh edges absent from the graph: deterministic probe pairs.
    let fresh: Vec<(u32, u32)> = (0u32..60)
        .flat_map(|u| [(u, (u + 29) % 60), (u, (u + 17) % 60)])
        .filter(|&(u, v)| u != v && !graph.has_edge(u, v))
        .take(6)
        .collect();
    assert!(!fresh.is_empty(), "probe pairs all collided with the graph");

    // One unfaulted flush to count the I/O ops a flush performs.
    write_partition_store(&store, &graph, &partition).unwrap();
    let service = PartitionService::open_store(&store, "hdrf", 0).unwrap();
    for &(u, v) in &fresh {
        let placed = service.handle(&Request::PlaceEdge { u, v });
        assert!(
            matches!(placed, Response::Placed { fresh: true, .. }),
            "probe ({u},{v}) not fresh: {placed:?}"
        );
    }
    let (response, total) = faults::count_ops(|| service.handle(&Request::Flush));
    assert!(matches!(response, Response::Flushed { .. }));
    assert!(total > 0, "op counter saw no flush I/O");
    drop(service);

    for kind in [FaultKind::Crash, FaultKind::ShortWrite, FaultKind::Enospc] {
        for at_op in 0..total {
            // Restore a committed store and accumulate the placements.
            // The WAL from the previous iteration must go too, or the
            // reopen would replay its stale records as pre-placed edges.
            write_partition_store(&store, &graph, &partition).unwrap();
            let _ = std::fs::remove_file(store.join(WAL_NAME));
            let service = PartitionService::open_store(&store, "hdrf", 0).unwrap();
            for &(u, v) in &fresh {
                service.handle(&Request::PlaceEdge { u, v });
            }
            faults::arm(FaultSchedule {
                at_op,
                kind,
                seed: at_op,
            });
            let outcome = service.handle(&Request::Flush);
            faults::disarm();
            match outcome {
                // The fault landed while the merged store was being
                // written: the flush fails, and the pending placements
                // must survive for the next attempt...
                Response::Error(_) => {
                    assert_eq!(
                        service.stats().pending_placements,
                        fresh.len() as u64,
                        "{kind:?} at op {at_op} dropped pending placements"
                    );
                    // ...and the store must be either intact (readable as
                    // the pre-flush data) or quarantined as torn — never
                    // silently corrupt.
                    match PartitionStoreReader::open(&store) {
                        Ok(reader) => {
                            let (g2, p2) = reader.load().unwrap_or_else(|e| {
                                panic!("{kind:?} at op {at_op}: intact store unreadable: {e}")
                            });
                            assert_eq!(g2, graph, "{kind:?} at op {at_op} changed the graph");
                            assert_eq!(
                                p2, partition,
                                "{kind:?} at op {at_op} changed the partition"
                            );
                        }
                        Err(StoreError::TornStore {
                            ref quarantined, ..
                        }) => {
                            assert!(quarantined.exists(), "quarantine target missing");
                            assert!(!store.exists(), "torn store left in place");
                        }
                        Err(other) => panic!(
                            "{kind:?} at op {at_op}: expected intact or TornStore, got {other}"
                        ),
                    }
                }
                // The fault landed *after* the manifest commit, in the
                // post-commit WAL truncation: the flush legitimately acks
                // (the store is durable) and the merged data must read
                // back complete. Stale WAL records are harmless — replay
                // is idempotent against the merged store.
                Response::Flushed { .. } => {
                    assert_eq!(
                        service.stats().pending_placements,
                        0,
                        "{kind:?} at op {at_op}: acked flush left pending placements"
                    );
                    let (g2, p2) = PartitionStoreReader::open(&store)
                        .and_then(|reader| reader.load())
                        .unwrap_or_else(|e| {
                            panic!("{kind:?} at op {at_op}: acked flush unreadable: {e}")
                        });
                    assert_eq!(
                        g2.num_edges(),
                        graph.num_edges() + fresh.len(),
                        "{kind:?} at op {at_op}: acked flush missing placements"
                    );
                    assert_eq!(g2.num_edges(), p2.num_edges());
                    for &(u, v) in &fresh {
                        assert!(
                            g2.has_edge(u, v),
                            "{kind:?} at op {at_op}: flushed edge ({u},{v}) missing"
                        );
                    }
                }
                other => panic!("{kind:?} at op {at_op}: unexpected flush reply: {other:?}"),
            }
            sweep_quarantines(&store);
        }
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn serve_wal_append_sweep_recovers_only_acked_placements() {
    use tlp_serve::{PartitionService, Request, Response};

    let _guard = faults::test_lock();
    let root = temp_dir("servewal");
    let store = root.join("store");
    let graph = chung_lu(60, 240, 2.2, 17);
    let m = graph.num_edges();
    let p = 4;
    let assignment: Vec<u32> = (0..m).map(|e| (e % p) as u32).collect();
    let partition = EdgePartition::new(p, assignment).unwrap();

    let fresh: Vec<(u32, u32)> = (0u32..60)
        .flat_map(|u| [(u, (u + 23) % 60), (u, (u + 11) % 60)])
        .filter(|&(u, v)| u != v && !graph.has_edge(u, v))
        .take(6)
        .collect();
    assert!(!fresh.is_empty(), "probe pairs all collided with the graph");
    // WAL records carry normalized endpoints.
    let issued: Vec<(u32, u32)> = fresh.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();

    // One unfaulted run to count the I/O ops the placement stream costs
    // (each append writes and fsyncs through the fault injector).
    write_partition_store(&store, &graph, &partition).unwrap();
    let service = PartitionService::open_store(&store, "hdrf", 0).unwrap();
    let ((), total) = faults::count_ops(|| {
        for &(u, v) in &fresh {
            let placed = service.handle(&Request::PlaceEdge { u, v });
            assert!(
                matches!(placed, Response::Placed { fresh: true, .. }),
                "probe ({u},{v}) not fresh: {placed:?}"
            );
        }
    });
    assert!(total > 0, "op counter saw no wal I/O");
    drop(service);

    for kind in [FaultKind::Crash, FaultKind::ShortWrite, FaultKind::Enospc] {
        for at_op in 0..total {
            write_partition_store(&store, &graph, &partition).unwrap();
            let _ = std::fs::remove_file(store.join(WAL_NAME));
            let service = PartitionService::open_store(&store, "hdrf", 0).unwrap();
            faults::arm(FaultSchedule {
                at_op,
                kind,
                seed: at_op,
            });
            let mut acked = Vec::new();
            for &(u, v) in &fresh {
                match service.handle(&Request::PlaceEdge { u, v }) {
                    Response::Placed { fresh: true, .. } => acked.push((u.min(v), u.max(v))),
                    // Append failed (ack withheld) or the wal is poisoned
                    // from an earlier failure: no durability claim made.
                    Response::Error(_) => {}
                    other => panic!("{kind:?} at op {at_op}: unexpected reply: {other:?}"),
                }
            }
            faults::disarm();
            assert!(
                acked.len() < fresh.len(),
                "{kind:?} at op {at_op} acked every placement despite the fault"
            );
            drop(service);

            // The log must read back clean — a torn tail is fine (it was
            // never acked), silent corruption is not — and it must cover
            // every acked placement while containing only issued edges.
            let replay = read_wal(&store.join(WAL_NAME)).unwrap_or_else(|e| {
                panic!("{kind:?} at op {at_op}: wal unreadable after fault: {e}")
            });
            let logged: Vec<(u32, u32)> = replay.records.iter().map(|r| (r.u, r.v)).collect();
            for edge in &acked {
                assert!(
                    logged.contains(edge),
                    "{kind:?} at op {at_op}: acked placement {edge:?} missing from wal"
                );
            }
            for edge in &logged {
                assert!(
                    issued.contains(edge),
                    "{kind:?} at op {at_op}: wal invented placement {edge:?}"
                );
            }

            // Reopening replays exactly the logged prefix.
            let recovered = PartitionService::open_store(&store, "hdrf", 0).unwrap();
            assert_eq!(
                recovered.stats().pending_placements,
                logged.len() as u64,
                "{kind:?} at op {at_op}: replay count diverged from the log"
            );
        }
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn report_write_sweep_preserves_previous_csv() {
    let _guard = faults::test_lock();
    let dir = temp_dir("report");
    let path = dir.join("results.csv");
    let header = ["dataset", "algorithm", "rf"];
    let old_rows = vec![vec!["G1".to_string(), "TLP".to_string(), "1.5".to_string()]];
    let new_rows = vec![
        vec!["G1".to_string(), "TLP".to_string(), "1.4".to_string()],
        vec!["G2".to_string(), "HDRF".to_string(), "2.9".to_string()],
    ];

    tlp_harness::report::write_csv(&path, &header, &old_rows).unwrap();
    let previous = std::fs::read_to_string(&path).unwrap();
    let (counted, total) =
        faults::count_ops(|| tlp_harness::report::write_csv(&path, &header, &new_rows));
    counted.unwrap();
    assert!(total > 0, "op counter saw no I/O");
    tlp_harness::report::write_csv(&path, &header, &old_rows).unwrap();

    for kind in [FaultKind::Crash, FaultKind::ShortWrite, FaultKind::Enospc] {
        for at_op in 0..total {
            faults::arm(FaultSchedule {
                at_op,
                kind,
                seed: at_op,
            });
            let failed = tlp_harness::report::write_csv(&path, &header, &new_rows);
            faults::disarm();
            assert!(
                failed.is_err(),
                "{kind:?} at op {at_op} did not fail the report write"
            );
            let survivor = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{kind:?} at op {at_op}: previous CSV unreadable: {e}"));
            assert_eq!(
                survivor, previous,
                "{kind:?} at op {at_op} tore the previous CSV"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_rewrite_sweep_preserves_previous_snapshot() {
    let _guard = faults::test_lock();
    let dir = temp_dir("ckpt");
    let m = 9;
    let old = EngineCheckpoint {
        seed: 5,
        num_partitions: 4,
        next_round: 2,
        rng_state: [1, 2, 3, 4],
        assignment: vec![0, 1, 0, 1, 0, 0, 0, 1, 0],
        allocated: vec![true, true, false, true, false, false, true, true, false],
        num_vertices: 8,
        num_edges: m,
    };
    let mut new = old.clone();
    new.next_round = 3;
    new.rng_state = [9, 9, 9, 9];
    new.assignment[2] = 2;
    new.allocated[2] = true;

    write_checkpoint(&dir, &old).unwrap();
    let (counted, total) = faults::count_ops(|| write_checkpoint(&dir, &new));
    counted.unwrap();
    write_checkpoint(&dir, &old).unwrap();

    for kind in [FaultKind::Crash, FaultKind::ShortWrite, FaultKind::Enospc] {
        for at_op in 0..total {
            faults::arm(FaultSchedule {
                at_op,
                kind,
                seed: at_op,
            });
            let failed = write_checkpoint(&dir, &new);
            faults::disarm();
            assert!(
                failed.is_err(),
                "{kind:?} at op {at_op} did not fail the checkpoint write"
            );
            let survivor = read_checkpoint(&dir).unwrap_or_else(|e| {
                panic!("{kind:?} at op {at_op}: previous checkpoint unreadable: {e}")
            });
            assert_eq!(
                survivor.as_ref(),
                Some(&old),
                "{kind:?} at op {at_op} lost the previous checkpoint"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
