//! Property tests for the placement WAL format, mirroring the trace
//! observer's torn-tail contract: arbitrary records round-trip
//! losslessly through append → reopen, a partial trailing record is
//! silently dropped (it was never acknowledged), and a flipped byte in a
//! full record is a typed [`StoreError`], never a panic or a silent
//! misread.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use proptest::prop::collection::vec;
use tlp_store::{read_wal, PlacementWal, StoreError, WalRecord, WAL_MAGIC, WAL_RECORD_LEN};

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tlp-wal-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn record_strategy() -> impl Strategy<Value = WalRecord> {
    // Full-width ids and partitions, plus the extremes explicitly.
    (
        prop_oneof![Just(0u32), Just(u32::MAX), any::<u32>()],
        prop_oneof![Just(0u32), Just(u32::MAX), any::<u32>()],
        any::<u32>(),
    )
        .prop_map(|(u, v, partition)| WalRecord { u, v, partition })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn records_round_trip_through_append_and_reopen(
        records in vec(record_strategy(), 0..48),
    ) {
        // Pure codec first: encode → decode is lossless.
        for record in &records {
            prop_assert_eq!(WalRecord::decode(&record.encode()).expect("decodes"), *record);
        }
        // And through the file: append all, reopen, replay in order.
        let dir = temp_dir();
        let (mut wal, replay) = PlacementWal::open(&dir).expect("opens");
        prop_assert!(replay.records.is_empty());
        for record in &records {
            wal.append(record).expect("appends");
        }
        prop_assert_eq!(wal.depth(), records.len() as u64);
        drop(wal);
        let replay = read_wal(&dir.join(tlp_store::WAL_NAME)).expect("reads");
        prop_assert_eq!(replay.records, records);
        prop_assert_eq!(replay.torn_tail_bytes, 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_tail_of_any_length_recovers_the_acked_prefix(
        records in vec(record_strategy(), 0..16),
        tail in vec(any::<u8>(), 1..WAL_RECORD_LEN),
    ) {
        let dir = temp_dir();
        let (mut wal, _) = PlacementWal::open(&dir).expect("opens");
        for record in &records {
            wal.append(record).expect("appends");
        }
        drop(wal);
        // Crash mid-append: garbage shorter than a record at the tail.
        let path = dir.join(tlp_store::WAL_NAME);
        let mut bytes = std::fs::read(&path).expect("reads");
        bytes.extend_from_slice(&tail);
        std::fs::write(&path, &bytes).expect("writes");

        let replay = read_wal(&path).expect("torn tail is recoverable");
        prop_assert_eq!(&replay.records, &records);
        prop_assert_eq!(replay.torn_tail_bytes, tail.len());

        // Reopening truncates the tail on disk and appends keep working.
        let (mut wal, replay) = PlacementWal::open(&dir).expect("reopens");
        prop_assert_eq!(&replay.records, &records);
        wal.append(&WalRecord { u: 1, v: 2, partition: 0 }).expect("appends after recovery");
        drop(wal);
        let len = std::fs::metadata(&path).expect("meta").len() as usize;
        prop_assert_eq!(len, WAL_MAGIC.len() + (records.len() + 1) * WAL_RECORD_LEN);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn flipped_byte_in_a_full_record_is_a_typed_error(
        records in vec(record_strategy(), 1..16),
        position in any::<u64>(),
        xor in 1u16..256,
    ) {
        let dir = temp_dir();
        let (mut wal, _) = PlacementWal::open(&dir).expect("opens");
        for record in &records {
            wal.append(record).expect("appends");
        }
        drop(wal);
        let path = dir.join(tlp_store::WAL_NAME);
        let mut bytes = std::fs::read(&path).expect("reads");
        let body_len = (bytes.len() - WAL_MAGIC.len()) as u64;
        let offset = WAL_MAGIC.len() + (position % body_len) as usize;
        bytes[offset] ^= xor as u8;
        std::fs::write(&path, &bytes).expect("writes");

        match read_wal(&path) {
            Err(StoreError::ChecksumMismatch { section, .. }) => {
                prop_assert_eq!(section, "wal record");
            }
            other => prop_assert!(false, "corruption not caught: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn foreign_magic_is_rejected_not_replayed(head in vec(any::<u8>(), 8..64)) {
        let mut head = head;
        if head[..8] == WAL_MAGIC {
            head[0] ^= 0xFF;
        }
        let dir = temp_dir();
        let path = dir.join(tlp_store::WAL_NAME);
        std::fs::write(&path, &head).expect("writes");
        let rejected = matches!(read_wal(&path), Err(StoreError::BadMagic { .. }));
        prop_assert!(rejected, "foreign magic replayed");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
