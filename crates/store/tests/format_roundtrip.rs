//! Round-trip property: any graph written to the binary format (either
//! version) reads back bit-identically — CSR arrays, degrees, and original
//! ids all equal — and the v2 zero-copy arena agrees with the decoder.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tlp_graph::generators::{barabasi_albert, chung_lu, erdos_renyi, genealogy};
use tlp_graph::{CsrGraph, GraphBuilder};
use tlp_store::format::SourceStamp;
use tlp_store::{write_graph, FormatVersion, GraphBuf, StoreReader, WriteOptions};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_path() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tlp-store-roundtrip-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("graph.tlpg")
}

fn assert_roundtrip(graph: &CsrGraph, original_ids: Option<Vec<u64>>) {
    for version in [FormatVersion::V1, FormatVersion::V2] {
        let path = temp_path();
        let options = WriteOptions {
            original_ids: original_ids.clone(),
            source: Some(SourceStamp {
                len: 12345,
                mtime: 67890,
            }),
            version,
        };
        write_graph(&path, graph, &options).unwrap();

        let reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.version(), version.number());
        assert_eq!(reader.header().num_vertices as usize, graph.num_vertices());
        assert_eq!(reader.header().num_edges as usize, graph.num_edges());
        assert_eq!(reader.header().source.len, 12345);

        let degrees = reader.read_degrees().unwrap();
        for v in graph.vertices() {
            assert_eq!(degrees[v as usize] as usize, graph.degree(v));
        }

        let stored = reader.read_graph().unwrap();
        assert_eq!(&stored.graph, graph, "CSR not bit-identical after reload");
        assert_eq!(stored.original_ids, original_ids);

        if version == FormatVersion::V2 {
            // The zero-copy arena must expose exactly the same graph.
            let arena = GraphBuf::open(&path).unwrap();
            assert_eq!(arena.view().to_csr_graph(), *graph);
            assert_eq!(
                arena.original_ids().map(<[u64]>::to_vec),
                original_ids.clone()
            );
        }
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}

#[test]
fn generator_families_roundtrip() {
    for (name, graph) in [
        ("erdos_renyi", erdos_renyi(500, 2000, 11)),
        ("chung_lu", chung_lu(500, 2000, 2.5, 12)),
        ("barabasi_albert", barabasi_albert(400, 4, 13)),
        ("genealogy", genealogy(300, 900, 14)),
    ] {
        let ids: Vec<u64> = (0..graph.num_vertices() as u64)
            .map(|v| v * 3 + 7)
            .collect();
        assert_roundtrip(&graph, None);
        assert_roundtrip(&graph, Some(ids));
        let _ = name;
    }
}

#[test]
fn edge_case_graphs_roundtrip() {
    // Empty graph, single edge, isolated trailing vertices.
    assert_roundtrip(&GraphBuilder::new().build(), None);
    assert_roundtrip(&GraphBuilder::new().add_edge(0, 1).build(), None);
    assert_roundtrip(
        &GraphBuilder::new()
            .reserve_vertices(10)
            .add_edge(0, 1)
            .build(),
        Some((0..10).collect()),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary dirty edge lists: build -> write -> read is the identity
    /// on the built graph.
    #[test]
    fn arbitrary_graphs_roundtrip(
        edges in (2u32..64).prop_flat_map(|n| {
            prop::collection::vec((0..n, 0..n), 0..200)
        })
    ) {
        let graph = GraphBuilder::new().add_edges(edges).build();
        for version in [FormatVersion::V1, FormatVersion::V2] {
            let path = temp_path();
            let options = WriteOptions { version, ..WriteOptions::default() };
            write_graph(&path, &graph, &options).unwrap();
            let stored = StoreReader::open(&path).unwrap().read_graph().unwrap();
            prop_assert_eq!(&stored.graph, &graph);
            if version == FormatVersion::V2 {
                let arena = GraphBuf::open(&path).unwrap();
                prop_assert_eq!(arena.view().to_csr_graph(), graph.clone());
            }
            std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
        }
    }
}
