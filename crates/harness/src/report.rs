//! Plain-text table rendering and CSV/JSON result files.
//!
//! Result files go through [`tlp_store::atomic_write`] (temp file, fsync,
//! atomic rename), so a crash mid-report leaves the previous file or
//! nothing — never a torn CSV/JSON (driven by the store's crash-point
//! sweep).

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use tlp_store::{atomic_write, StoreError};

/// Maps a store-layer write failure onto the `std::io::Result` signature
/// these writers have always had.
fn to_io_error(e: StoreError) -> std::io::Error {
    match e {
        StoreError::Io(io) => io,
        other => std::io::Error::other(other.to_string()),
    }
}

/// A simple fixed-width text table (first row = header).
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row (the first row is rendered as the header).
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with column-aligned cells and a header rule.
    pub fn render(&self) -> String {
        if self.rows.is_empty() {
            return String::new();
        }
        let cols = self.rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        for (r, row) in self.rows.iter().enumerate() {
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = row.get(i).unwrap_or(&empty);
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}");
            }
            out.push('\n');
            if r == 0 {
                let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }
}

/// Writes rows as an RFC-4180-ish CSV file (values are formatted by the
/// caller; cells containing commas or quotes are quoted).
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    atomic_write(path.as_ref(), |out| {
        writeln!(out, "{}", header.join(",")).map_err(StoreError::Io)?;
        for row in rows {
            let line: Vec<String> = row.iter().map(|c| escape_csv(c)).collect();
            writeln!(out, "{}", line.join(",")).map_err(StoreError::Io)?;
        }
        Ok(())
    })
    .map_err(to_io_error)
}

fn escape_csv(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Serializes any `Serialize` value as pretty JSON to `path`.
///
/// # Errors
///
/// Propagates serialization and I/O failures.
pub fn write_json<P: AsRef<Path>, T: serde::Serialize>(path: P, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value).map_err(std::io::Error::other)?;
    atomic_write(path.as_ref(), |out| {
        out.write_all(json.as_bytes()).map_err(StoreError::Io)
    })
    .map_err(to_io_error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new();
        t.row(["name", "rf"]);
        t.row(["G1", "1.23"]);
        t.row(["G10", "12.3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // Right-aligned: "G1" padded to width 4.
        assert!(lines[2].contains("  G1") || lines[2].starts_with(" G1"));
    }

    #[test]
    fn empty_table_renders_empty() {
        assert_eq!(TextTable::new().render(), "");
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(escape_csv("plain"), "plain");
        assert_eq!(escape_csv("a,b"), "\"a,b\"");
        assert_eq!(escape_csv("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let path = std::env::temp_dir().join(format!("tlp-csv-{}.csv", std::process::id()));
        write_csv(&path, &["a", "b"], &[vec!["1".into(), "x,y".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,\"x,y\"\n");
        std::fs::remove_file(&path).unwrap();
    }
}
