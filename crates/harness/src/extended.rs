//! Extended comparison beyond the paper's Fig. 8 line-up: adds NE (the
//! paper's reference \[13\]), PowerGraph Greedy, HDRF, and FENNEL, plus the
//! single-stage TLP ablations.

use crate::experiment::{run_matrix, RfRecord};
use crate::report::{write_csv, TextTable};
use crate::{ExperimentContext, HarnessError, PARTITION_COUNTS};

/// The full eleven-algorithm line-up, as registry names: the paper's five
/// plus NE, the single-stage TLP ablations, Greedy, HDRF, and FENNEL.
pub const EXTENDED_LINEUP: [&str; 11] = [
    "tlp", "stage1", "stage2", "metis", "ne", "greedy", "hdrf", "fennel", "ldg", "dbh", "random",
];

/// Runs the extended comparison across `ctx.worker_threads()` threads,
/// printing one panel per partition count and writing `extended.csv`.
///
/// # Errors
///
/// [`HarnessError`] when a dataset fails to load or the CSV fails to write.
pub fn run(ctx: &ExperimentContext) -> Result<Vec<RfRecord>, HarnessError> {
    let mut records = Vec::new();
    for &id in &ctx.datasets {
        let (graph, spec, scale) = ctx.load(id)?;
        eprintln!(
            "extended: {id} ({}) at scale {scale:.4}: {} edges",
            spec.name,
            graph.num_edges()
        );
        let dataset_records = run_matrix(&graph, id, &PARTITION_COUNTS, &EXTENDED_LINEUP, ctx);
        for record in dataset_records {
            eprintln!(
                "  p={:2} {:>12}: RF = {:.3} ({:.2}s)",
                record.p, record.algorithm, record.rf, record.seconds
            );
            records.push(record);
        }
    }

    for &p in &PARTITION_COUNTS {
        println!("{}", crate::fig8::render_panel(&records, p));
    }

    let csv_rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.algorithm.clone(),
                r.p.to_string(),
                format!("{}", r.rf),
                format!("{}", r.balance),
                format!("{}", r.seconds),
            ]
        })
        .collect();
    write_csv(
        ctx.out_path("extended.csv")?,
        &["dataset", "algorithm", "p", "rf", "balance", "seconds"],
        &csv_rows,
    )
    .map_err(|e| HarnessError::io("write extended.csv", e))?;
    Ok(records)
}

/// Ranks algorithms by mean RF across all records (ties broken by name).
pub fn ranking(records: &[RfRecord]) -> Vec<(String, f64)> {
    let mut sums: std::collections::BTreeMap<String, (f64, usize)> = Default::default();
    for r in records {
        let entry = sums.entry(r.algorithm.clone()).or_insert((0.0, 0));
        entry.0 += r.rf;
        entry.1 += 1;
    }
    let mut out: Vec<(String, f64)> = sums
        .into_iter()
        .map(|(name, (sum, count))| (name, sum / count as f64))
        .collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Prints the overall ranking table.
pub fn print_ranking(records: &[RfRecord]) {
    let mut table = TextTable::new();
    table.row(["rank", "algorithm", "mean RF"]);
    for (i, (name, rf)) in ranking(records).into_iter().enumerate() {
        table.row([format!("{}", i + 1), name, format!("{rf:.3}")]);
    }
    println!(
        "Extended comparison — mean RF across all runs\n{}",
        table.render()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(algorithm: &str, rf: f64) -> RfRecord {
        RfRecord {
            dataset: "G1".into(),
            algorithm: algorithm.into(),
            p: 10,
            rf,
            balance: 1.0,
            seconds: 0.0,
        }
    }

    #[test]
    fn lineup_has_eleven_distinct_names() {
        let registry = tlp_pipeline::builtin_registry();
        let names: Vec<String> = EXTENDED_LINEUP
            .iter()
            .map(|spec| {
                registry
                    .entry_of(spec)
                    .unwrap_or_else(|| panic!("{spec} not registered"))
                    .label
                    .to_string()
            })
            .collect();
        assert_eq!(names.len(), 11);
        let mut unique = names.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate names: {names:?}");
        assert!(names.contains(&"NE".to_string()));
        assert!(names.contains(&"HDRF".to_string()));
    }

    #[test]
    fn ranking_orders_by_mean_rf() {
        let records = vec![rec("A", 2.0), rec("B", 1.0), rec("A", 4.0), rec("B", 3.0)];
        let ranked = ranking(&records);
        assert_eq!(ranked[0].0, "B");
        assert_eq!(ranked[0].1, 2.0);
        assert_eq!(ranked[1].0, "A");
        assert_eq!(ranked[1].1, 3.0);
    }
}
