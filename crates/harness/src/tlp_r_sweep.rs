//! Figs. 9–11: TLP vs TLP_R with R swept over [0, 1] in steps of 0.1.

use crate::report::{write_csv, TextTable};
use crate::{ExperimentContext, HarnessError, PARTITION_COUNTS};
use tlp_core::{
    EdgePartitioner, EdgeRatioLocalPartitioner, PartitionMetrics, TlpConfig,
    TwoStageLocalPartitioner,
};

/// The 11 sweep values of `R` used by the paper.
pub fn sweep_ratios() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

/// One (dataset, p) sweep series.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSeries {
    /// Dataset notation.
    pub dataset: String,
    /// Number of partitions.
    pub p: usize,
    /// `(R, RF)` pairs for TLP_R.
    pub tlp_r: Vec<(f64, f64)>,
    /// RF of the modularity-switched TLP (the horizontal line in the plots).
    pub tlp: f64,
}

impl SweepSeries {
    /// RF of the best interior configuration (`0 < R < 1`).
    pub fn best_interior(&self) -> f64 {
        self.tlp_r
            .iter()
            .filter(|(r, _)| *r > 0.0 && *r < 1.0)
            .map(|&(_, rf)| rf)
            .fold(f64::INFINITY, f64::min)
    }

    /// RF of the worse extreme (`R = 0` or `R = 1`).
    pub fn worst_extreme(&self) -> f64 {
        self.tlp_r
            .iter()
            .filter(|(r, _)| *r == 0.0 || *r == 1.0)
            .map(|&(_, rf)| rf)
            .fold(0.0, f64::max)
    }
}

/// Runs the full sweep (Figs. 9, 10, 11 correspond to p = 10, 15, 20).
///
/// # Errors
///
/// [`HarnessError`] when a dataset fails to load, a partitioner run fails,
/// or the CSV fails to write.
pub fn run(ctx: &ExperimentContext) -> Result<Vec<SweepSeries>, HarnessError> {
    let mut series = Vec::new();
    let ratios = sweep_ratios();
    for &id in &ctx.datasets {
        let (graph, _, scale) = ctx.load(id)?;
        eprintln!("tlp_r sweep: {id} at scale {scale:.4}");
        for &p in &PARTITION_COUNTS {
            let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(ctx.seed));
            let partition = tlp
                .partition(&graph, p)
                .map_err(|e| HarnessError::partition(format!("TLP on {id} p={p}"), e))?;
            let tlp_rf = PartitionMetrics::compute(&graph, &partition).replication_factor;

            let mut curve = Vec::with_capacity(ratios.len());
            for &r in &ratios {
                let algo = EdgeRatioLocalPartitioner::new(TlpConfig::new().seed(ctx.seed), r)
                    .map_err(|e| HarnessError::partition(format!("TLP_R R={r}"), e))?;
                let part = algo.partition(&graph, p).map_err(|e| {
                    HarnessError::partition(format!("TLP_R R={r} on {id} p={p}"), e)
                })?;
                let rf = PartitionMetrics::compute(&graph, &part).replication_factor;
                curve.push((r, rf));
            }
            eprintln!(
                "  p={p:2}: TLP RF = {tlp_rf:.3}, TLP_R best interior = {:.3}, extremes = {:.3}",
                curve
                    .iter()
                    .filter(|(r, _)| *r > 0.0 && *r < 1.0)
                    .map(|&(_, rf)| rf)
                    .fold(f64::INFINITY, f64::min),
                curve
                    .iter()
                    .filter(|(r, _)| *r == 0.0 || *r == 1.0)
                    .map(|&(_, rf)| rf)
                    .fold(0.0, f64::max),
            );
            series.push(SweepSeries {
                dataset: id.to_string(),
                p,
                tlp_r: curve,
                tlp: tlp_rf,
            });
        }
    }

    for &p in &PARTITION_COUNTS {
        println!("{}", render_figure(&series, p));
    }

    let mut csv_rows = Vec::new();
    for s in &series {
        for &(r, rf) in &s.tlp_r {
            csv_rows.push(vec![
                s.dataset.clone(),
                s.p.to_string(),
                format!("{r}"),
                format!("{rf}"),
                "TLP_R".to_string(),
            ]);
        }
        csv_rows.push(vec![
            s.dataset.clone(),
            s.p.to_string(),
            String::new(),
            format!("{}", s.tlp),
            "TLP".to_string(),
        ]);
    }
    write_csv(
        ctx.out_path("fig9_10_11.csv")?,
        &["dataset", "p", "r", "rf", "algorithm"],
        &csv_rows,
    )
    .map_err(|e| HarnessError::io("write fig9_10_11.csv", e))?;
    Ok(series)
}

/// Renders one figure (fixed `p`): datasets as rows, R values as columns,
/// with the TLP reference in the last column.
pub fn render_figure(series: &[SweepSeries], p: usize) -> String {
    let figure_no = match p {
        10 => "9",
        15 => "10",
        20 => "11",
        _ => "?",
    };
    let mut table = TextTable::new();
    let mut header = vec!["dataset".to_string()];
    for r in sweep_ratios() {
        header.push(format!("R={r:.1}"));
    }
    header.push("TLP".to_string());
    table.row(header);
    for s in series.iter().filter(|s| s.p == p) {
        let mut row = vec![s.dataset.clone()];
        for &(_, rf) in &s.tlp_r {
            row.push(format!("{rf:.3}"));
        }
        row.push(format!("{:.3}", s.tlp));
        table.row(row);
    }
    format!(
        "Fig. {figure_no} — TLP_R sweep (RF by R) vs TLP, p = {p}\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_ratio_grid_matches_paper() {
        let r = sweep_ratios();
        assert_eq!(r.len(), 11);
        assert_eq!(r[0], 0.0);
        assert_eq!(r[10], 1.0);
        assert!((r[3] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn series_extrema_helpers() {
        let s = SweepSeries {
            dataset: "G1".into(),
            p: 10,
            tlp_r: vec![(0.0, 2.0), (0.5, 1.4), (1.0, 2.5)],
            tlp: 1.45,
        };
        assert_eq!(s.best_interior(), 1.4);
        assert_eq!(s.worst_extreme(), 2.5);
    }

    #[test]
    fn render_names_the_right_figure() {
        let s = vec![SweepSeries {
            dataset: "G1".into(),
            p: 15,
            tlp_r: sweep_ratios().into_iter().map(|r| (r, 1.0)).collect(),
            tlp: 1.0,
        }];
        let out = render_figure(&s, 15);
        assert!(out.contains("Fig. 10"));
        assert!(out.contains("R=0.7"));
    }
}
