//! Experiment harness: regenerates every table and figure of the TLP paper.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table III (dataset statistics) | [`table3`] | `table3` |
//! | Fig. 8 (RF of TLP vs METIS/LDG/DBH/Random, p = 10/15/20) | [`fig8`] | `fig8` |
//! | Table IV (ΔRF = RF(METIS) − RF(TLP)) | [`table4`] | `table4` |
//! | Figs. 9–11 (TLP vs TLP_R sweep over R) | [`tlp_r_sweep`] | `fig9_10_11` |
//! | Table VI (average selected degree per stage) | [`table6`] | `table6` |
//!
//! Every binary accepts:
//!
//! * `--datasets G1,G2,...` — subset of graphs (default: all nine);
//! * `--scale X` — instantiation scale override in `(0, 1]`;
//! * `--seed N` — RNG seed (default 42);
//! * `--quick` — caps every dataset at 60k edges for smoke runs;
//! * `--threads N` — worker threads for the experiment matrix (default:
//!   all available cores);
//! * `--data-dir DIR` — where real SNAP files are searched (default `data`);
//! * `--out-dir DIR` — where CSV/JSON results land (default `results`);
//! * `--format auto|text|bin` — how real dataset files are read: probe
//!   the `.tlpg` binary cache (default), force the text parse, or require
//!   the binary cache;
//! * `--stream-budget N` — edge-buffer budget for streaming-capable
//!   algorithms (Greedy/HDRF/DBH/Random run bounded-memory passes).
//!
//! All nine flags are parsed by one shared [`HarnessArgs`]; experiments
//! resolve algorithms by name through the unified pipeline registry
//! (`tlp_pipeline::builtin_registry`), so a new algorithm registered there
//! is immediately runnable from every binary.
//!
//! Run the whole evaluation with `cargo run --release -p tlp-harness --bin all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod error;
pub mod experiment;
pub mod extended;
pub mod fig8;
pub mod report;
pub mod table3;
pub mod table4;
pub mod table6;
pub mod tlp_r_sweep;

pub use context::{ExperimentContext, HarnessArgs};
pub use error::HarnessError;

/// The partition counts evaluated throughout the paper.
pub const PARTITION_COUNTS: [usize; 3] = [10, 15, 20];
