//! Regenerates Fig. 8 (RF of the five-algorithm line-up, p = 10/15/20).
fn main() {
    let ctx = tlp_harness::ExperimentContext::parse(std::env::args().skip(1));
    tlp_harness::fig8::run(&ctx);
}
