//! Regenerates Fig. 8 (RF of the five-algorithm line-up, p = 10/15/20).
fn main() {
    let ctx = tlp_harness::HarnessArgs::parse_or_exit(std::env::args().skip(1));
    if let Err(e) = ctx.observed(|| tlp_harness::fig8::run(&ctx)) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
