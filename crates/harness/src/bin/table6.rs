//! Regenerates Table VI (average selected-vertex degree per TLP stage).
fn main() {
    let ctx = tlp_harness::ExperimentContext::parse(std::env::args().skip(1));
    tlp_harness::table6::run(&ctx);
}
