//! Regenerates Table VI (average selected-vertex degree per TLP stage).
fn main() {
    let ctx = tlp_harness::HarnessArgs::parse_or_exit(std::env::args().skip(1));
    if let Err(e) = ctx.observed(|| tlp_harness::table6::run(&ctx)) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
