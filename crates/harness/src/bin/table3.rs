//! Regenerates Table III (dataset statistics).
fn main() {
    let ctx = tlp_harness::ExperimentContext::parse(std::env::args().skip(1));
    tlp_harness::table3::run(&ctx);
}
