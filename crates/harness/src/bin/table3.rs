//! Regenerates Table III (dataset statistics).
fn main() {
    let ctx = tlp_harness::HarnessArgs::parse_or_exit(std::env::args().skip(1));
    if let Err(e) = ctx.observed(|| tlp_harness::table3::run(&ctx)) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
