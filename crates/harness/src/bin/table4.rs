//! Regenerates Table IV (delta RF between METIS and TLP); runs Fig. 8 first.
fn main() {
    let ctx = tlp_harness::ExperimentContext::parse(std::env::args().skip(1));
    let records = tlp_harness::fig8::run(&ctx);
    tlp_harness::table4::from_records(&ctx, &records);
}
