//! Regenerates Table IV (delta RF between METIS and TLP); runs Fig. 8 first.
fn main() {
    let ctx = tlp_harness::HarnessArgs::parse_or_exit(std::env::args().skip(1));
    let result = ctx.observed(|| {
        let records = tlp_harness::fig8::run(&ctx)?;
        tlp_harness::table4::from_records(&ctx, &records)
    });
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
