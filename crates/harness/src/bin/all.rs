//! Runs the complete evaluation: Table III, Fig. 8 + Table IV, Figs. 9-11,
//! and Table VI, writing all CSV/JSON outputs to the results directory.
fn main() {
    let ctx = tlp_harness::ExperimentContext::parse(std::env::args().skip(1));
    tlp_harness::table3::run(&ctx);
    let records = tlp_harness::fig8::run(&ctx);
    tlp_harness::table4::from_records(&ctx, &records);
    tlp_harness::tlp_r_sweep::run(&ctx);
    tlp_harness::table6::run(&ctx);
    eprintln!("all experiments complete; outputs in {:?}", ctx.out_dir);
}
