//! Runs the complete evaluation: Table III, Fig. 8 + Table IV, Figs. 9-11,
//! and Table VI, writing all CSV/JSON outputs to the results directory.
use tlp_harness::HarnessError;

fn run_all(ctx: &tlp_harness::ExperimentContext) -> Result<(), HarnessError> {
    tlp_harness::table3::run(ctx)?;
    let records = tlp_harness::fig8::run(ctx)?;
    tlp_harness::table4::from_records(ctx, &records)?;
    tlp_harness::tlp_r_sweep::run(ctx)?;
    tlp_harness::table6::run(ctx)?;
    Ok(())
}

fn main() {
    let ctx = tlp_harness::HarnessArgs::parse_or_exit(std::env::args().skip(1));
    if let Err(e) = ctx.observed(|| run_all(&ctx)) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    eprintln!("all experiments complete; outputs in {:?}", ctx.out_dir);
}
