//! Extended RF comparison across eleven algorithms (beyond the paper).
fn main() {
    let ctx = tlp_harness::HarnessArgs::parse_or_exit(std::env::args().skip(1));
    match ctx.observed(|| tlp_harness::extended::run(&ctx)) {
        Ok(records) => tlp_harness::extended::print_ranking(&records),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
