//! Extended RF comparison across eleven algorithms (beyond the paper).
fn main() {
    let ctx = tlp_harness::ExperimentContext::parse(std::env::args().skip(1));
    let records = tlp_harness::extended::run(&ctx);
    tlp_harness::extended::print_ranking(&records);
}
