//! Regenerates Figs. 9-11 (TLP vs TLP_R sweep over R, p = 10/15/20).
fn main() {
    let ctx = tlp_harness::ExperimentContext::parse(std::env::args().skip(1));
    tlp_harness::tlp_r_sweep::run(&ctx);
}
