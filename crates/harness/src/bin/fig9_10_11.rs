//! Regenerates Figs. 9-11 (TLP vs TLP_R sweep over R, p = 10/15/20).
fn main() {
    let ctx = tlp_harness::HarnessArgs::parse_or_exit(std::env::args().skip(1));
    if let Err(e) = ctx.observed(|| tlp_harness::tlp_r_sweep::run(&ctx)) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
