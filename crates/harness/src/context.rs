//! Shared CLI context for the experiment binaries.

use std::path::PathBuf;
use tlp_datasets::{loader, DatasetId, DatasetSpec};
use tlp_graph::CsrGraph;

/// Parsed command-line options shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct ExperimentContext {
    /// Directory searched for real SNAP files.
    pub data_dir: PathBuf,
    /// Directory where CSV/JSON outputs are written.
    pub out_dir: PathBuf,
    /// Base RNG seed for partitioners and generators.
    pub seed: u64,
    /// Instantiation scale override (`--scale`).
    pub scale_override: Option<f64>,
    /// Cap dataset size for smoke runs (`--quick`).
    pub quick: bool,
    /// Datasets to run on.
    pub datasets: Vec<DatasetId>,
    /// Worker threads for the experiment matrix (`--threads`, 0 = auto).
    pub threads: usize,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext {
            data_dir: PathBuf::from("data"),
            out_dir: PathBuf::from("results"),
            seed: 42,
            scale_override: None,
            quick: false,
            datasets: DatasetId::ALL.to_vec(),
            threads: 0,
        }
    }
}

impl ExperimentContext {
    /// Parses the common flags from an argument list (excluding argv[0]).
    ///
    /// Unknown flags abort with a usage message, keeping the binaries honest.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut ctx = ExperimentContext::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .unwrap_or_else(|| panic!("flag {flag} requires a value"))
            };
            match arg.as_str() {
                "--data-dir" => ctx.data_dir = PathBuf::from(value_of("--data-dir")),
                "--out-dir" => ctx.out_dir = PathBuf::from(value_of("--out-dir")),
                "--seed" => ctx.seed = value_of("--seed").parse().expect("--seed takes an integer"),
                "--scale" => {
                    let s: f64 = value_of("--scale").parse().expect("--scale takes a float");
                    assert!(s > 0.0 && s <= 1.0, "--scale must be in (0, 1]");
                    ctx.scale_override = Some(s);
                }
                "--quick" => ctx.quick = true,
                "--threads" => {
                    ctx.threads = value_of("--threads")
                        .parse()
                        .expect("--threads takes an integer")
                }
                "--datasets" => {
                    let list = value_of("--datasets");
                    ctx.datasets = list
                        .split(',')
                        .map(|tok| parse_dataset(tok.trim()))
                        .collect();
                }
                other => panic!(
                    "unknown flag {other}; supported: --datasets --scale --seed --quick \
                     --threads --data-dir --out-dir"
                ),
            }
        }
        ctx
    }

    /// The worker-thread count experiments should use (`--threads`, with 0
    /// resolved to the machine's available parallelism).
    pub fn worker_threads(&self) -> usize {
        match self.threads {
            0 => tlp_core::available_threads(),
            t => t,
        }
    }

    /// The scale a dataset will be instantiated at under these options.
    pub fn scale_for(&self, spec: &DatasetSpec) -> f64 {
        let base = self.scale_override.unwrap_or(spec.default_scale);
        if self.quick {
            // Cap at ~60k edges for smoke runs.
            let cap = 60_000.0 / spec.edges as f64;
            base.min(cap).clamp(1e-4, 1.0)
        } else {
            base
        }
    }

    /// Loads one dataset (real file if present, synthetic otherwise).
    pub fn load(&self, id: DatasetId) -> (CsrGraph, &'static DatasetSpec, f64) {
        let spec = DatasetSpec::get(id);
        let scale = self.scale_for(spec);
        let ds = loader::load(spec, &self.data_dir, scale, self.seed)
            .unwrap_or_else(|e| panic!("failed to load {id}: {e}"));
        (ds.graph, spec, scale)
    }

    /// Ensures the output directory exists and returns a path inside it.
    pub fn out_path(&self, file: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("create out dir");
        self.out_dir.join(file)
    }
}

fn parse_dataset(token: &str) -> DatasetId {
    DatasetId::ALL
        .into_iter()
        .find(|id| id.to_string().eq_ignore_ascii_case(token))
        .unwrap_or_else(|| panic!("unknown dataset {token}; expected G1..G9"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExperimentContext {
        ExperimentContext::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let ctx = parse(&[]);
        assert_eq!(ctx.seed, 42);
        assert_eq!(ctx.datasets.len(), 9);
        assert!(!ctx.quick);
    }

    #[test]
    fn parses_all_flags() {
        let ctx = parse(&[
            "--datasets",
            "G1,g3",
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--quick",
            "--threads",
            "3",
            "--data-dir",
            "/d",
            "--out-dir",
            "/o",
        ]);
        assert_eq!(ctx.datasets, vec![DatasetId::G1, DatasetId::G3]);
        assert_eq!(ctx.scale_override, Some(0.5));
        assert_eq!(ctx.seed, 7);
        assert!(ctx.quick);
        assert_eq!(ctx.threads, 3);
        assert_eq!(ctx.worker_threads(), 3);
        assert_eq!(ctx.data_dir, PathBuf::from("/d"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--frobnicate"]);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        parse(&["--datasets", "G42"]);
    }

    #[test]
    fn quick_caps_scale() {
        let ctx = parse(&["--quick"]);
        let spec = tlp_datasets::DatasetSpec::get(DatasetId::G8); // 905k edges
        let scale = ctx.scale_for(spec);
        assert!(scale * spec.edges as f64 <= 61_000.0);
        let small = tlp_datasets::DatasetSpec::get(DatasetId::G1); // 25k edges
        assert_eq!(ctx.scale_for(small), 1.0);
    }
}
