//! Shared CLI context for the experiment binaries.

use crate::HarnessError;
use std::path::PathBuf;
use tlp_datasets::{loader, DatasetId, DatasetSpec};
use tlp_graph::CsrGraph;

/// Parsed command-line options shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct ExperimentContext {
    /// Directory searched for real SNAP files.
    pub data_dir: PathBuf,
    /// Directory where CSV/JSON outputs are written.
    pub out_dir: PathBuf,
    /// Base RNG seed for partitioners and generators.
    pub seed: u64,
    /// Instantiation scale override (`--scale`).
    pub scale_override: Option<f64>,
    /// Cap dataset size for smoke runs (`--quick`).
    pub quick: bool,
    /// Datasets to run on.
    pub datasets: Vec<DatasetId>,
    /// Worker threads for the experiment matrix (`--threads`, 0 = auto).
    pub threads: usize,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext {
            data_dir: PathBuf::from("data"),
            out_dir: PathBuf::from("results"),
            seed: 42,
            scale_override: None,
            quick: false,
            datasets: DatasetId::ALL.to_vec(),
            threads: 0,
        }
    }
}

impl ExperimentContext {
    /// Parses the common flags from an argument list (excluding argv[0]).
    ///
    /// # Errors
    ///
    /// [`HarnessError::Usage`] on an unknown flag, a missing value, or a
    /// value that fails to parse.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, HarnessError> {
        let mut ctx = ExperimentContext::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .ok_or_else(|| HarnessError::Usage(format!("flag {flag} requires a value")))
            };
            match arg.as_str() {
                "--data-dir" => ctx.data_dir = PathBuf::from(value_of("--data-dir")?),
                "--out-dir" => ctx.out_dir = PathBuf::from(value_of("--out-dir")?),
                "--seed" => {
                    ctx.seed = value_of("--seed")?
                        .parse()
                        .map_err(|_| HarnessError::Usage("--seed takes an integer".to_string()))?
                }
                "--scale" => {
                    let s: f64 = value_of("--scale")?
                        .parse()
                        .map_err(|_| HarnessError::Usage("--scale takes a float".to_string()))?;
                    if !(s > 0.0 && s <= 1.0) {
                        return Err(HarnessError::Usage("--scale must be in (0, 1]".to_string()));
                    }
                    ctx.scale_override = Some(s);
                }
                "--quick" => ctx.quick = true,
                "--threads" => {
                    ctx.threads = value_of("--threads")?.parse().map_err(|_| {
                        HarnessError::Usage("--threads takes an integer".to_string())
                    })?
                }
                "--datasets" => {
                    let list = value_of("--datasets")?;
                    ctx.datasets = list
                        .split(',')
                        .map(|tok| parse_dataset(tok.trim()))
                        .collect::<Result<_, _>>()?;
                }
                other => {
                    return Err(HarnessError::Usage(format!(
                        "unknown flag {other}; supported: --datasets --scale --seed --quick \
                         --threads --data-dir --out-dir"
                    )))
                }
            }
        }
        Ok(ctx)
    }

    /// [`parse`](Self::parse), but prints the error and exits with status 2
    /// on failure — the front door for the experiment binaries.
    pub fn parse_or_exit<I: IntoIterator<Item = String>>(args: I) -> Self {
        match Self::parse(args) {
            Ok(ctx) => ctx,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// The worker-thread count experiments should use (`--threads`, with 0
    /// resolved to the machine's available parallelism).
    pub fn worker_threads(&self) -> usize {
        match self.threads {
            0 => tlp_core::available_threads(),
            t => t,
        }
    }

    /// The scale a dataset will be instantiated at under these options.
    pub fn scale_for(&self, spec: &DatasetSpec) -> f64 {
        let base = self.scale_override.unwrap_or(spec.default_scale);
        if self.quick {
            // Cap at ~60k edges for smoke runs.
            let cap = 60_000.0 / spec.edges as f64;
            base.min(cap).clamp(1e-4, 1.0)
        } else {
            base
        }
    }

    /// Loads one dataset (real file if present, synthetic otherwise).
    ///
    /// # Errors
    ///
    /// [`HarnessError::Dataset`] when a real file exists but fails to parse
    /// (the synthetic path is infallible).
    pub fn load(
        &self,
        id: DatasetId,
    ) -> Result<(CsrGraph, &'static DatasetSpec, f64), HarnessError> {
        let spec = DatasetSpec::get(id);
        let scale = self.scale_for(spec);
        let ds = loader::load(spec, &self.data_dir, scale, self.seed)
            .map_err(|source| HarnessError::Dataset { id, source })?;
        Ok((ds.graph, spec, scale))
    }

    /// Ensures the output directory exists and returns a path inside it.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Io`] when the output directory cannot be created.
    pub fn out_path(&self, file: &str) -> Result<PathBuf, HarnessError> {
        std::fs::create_dir_all(&self.out_dir).map_err(|e| {
            HarnessError::io(
                format!("create output directory {}", self.out_dir.display()),
                e,
            )
        })?;
        Ok(self.out_dir.join(file))
    }
}

fn parse_dataset(token: &str) -> Result<DatasetId, HarnessError> {
    DatasetId::ALL
        .into_iter()
        .find(|id| id.to_string().eq_ignore_ascii_case(token))
        .ok_or_else(|| HarnessError::Usage(format!("unknown dataset {token}; expected G1..G9")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExperimentContext, HarnessError> {
        ExperimentContext::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let ctx = parse(&[]).unwrap();
        assert_eq!(ctx.seed, 42);
        assert_eq!(ctx.datasets.len(), 9);
        assert!(!ctx.quick);
    }

    #[test]
    fn parses_all_flags() {
        let ctx = parse(&[
            "--datasets",
            "G1,g3",
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--quick",
            "--threads",
            "3",
            "--data-dir",
            "/d",
            "--out-dir",
            "/o",
        ])
        .unwrap();
        assert_eq!(ctx.datasets, vec![DatasetId::G1, DatasetId::G3]);
        assert_eq!(ctx.scale_override, Some(0.5));
        assert_eq!(ctx.seed, 7);
        assert!(ctx.quick);
        assert_eq!(ctx.threads, 3);
        assert_eq!(ctx.worker_threads(), 3);
        assert_eq!(ctx.data_dir, PathBuf::from("/d"));
    }

    #[test]
    fn unknown_flag_is_a_usage_error() {
        let err = parse(&["--frobnicate"]).unwrap_err();
        assert!(matches!(err, HarnessError::Usage(_)));
        assert!(err.to_string().contains("unknown flag"));
    }

    #[test]
    fn unknown_dataset_is_a_usage_error() {
        let err = parse(&["--datasets", "G42"]).unwrap_err();
        assert!(err.to_string().contains("unknown dataset"));
    }

    #[test]
    fn missing_value_and_bad_parse_are_usage_errors() {
        assert!(parse(&["--seed"])
            .unwrap_err()
            .to_string()
            .contains("requires a value"));
        assert!(parse(&["--seed", "abc"])
            .unwrap_err()
            .to_string()
            .contains("integer"));
        assert!(parse(&["--scale", "1.5"])
            .unwrap_err()
            .to_string()
            .contains("(0, 1]"));
    }

    #[test]
    fn quick_caps_scale() {
        let ctx = parse(&["--quick"]).unwrap();
        let spec = tlp_datasets::DatasetSpec::get(DatasetId::G8); // 905k edges
        let scale = ctx.scale_for(spec);
        assert!(scale * spec.edges as f64 <= 61_000.0);
        let small = tlp_datasets::DatasetSpec::get(DatasetId::G1); // 25k edges
        assert_eq!(ctx.scale_for(small), 1.0);
    }
}
