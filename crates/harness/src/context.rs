//! Shared CLI context for the experiment binaries: [`HarnessArgs`] (the
//! one flag parser all seven binaries share) and [`ExperimentContext`]
//! (the resolved options experiments consume).

use crate::HarnessError;
use std::path::PathBuf;
use tlp_datasets::{loader, loader::CachePolicy, DatasetId, DatasetSpec};
use tlp_graph::CsrGraph;

/// Parsed command-line options shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct ExperimentContext {
    /// Directory searched for real SNAP files.
    pub data_dir: PathBuf,
    /// Directory where CSV/JSON outputs are written.
    pub out_dir: PathBuf,
    /// Base RNG seed for partitioners and generators.
    pub seed: u64,
    /// Instantiation scale override (`--scale`).
    pub scale_override: Option<f64>,
    /// Cap dataset size for smoke runs (`--quick`).
    pub quick: bool,
    /// Datasets to run on.
    pub datasets: Vec<DatasetId>,
    /// Worker threads for the experiment matrix (`--threads`, 0 = auto).
    pub threads: usize,
    /// How real dataset files are read (`--format`): probe the `.tlpg`
    /// cache, force the text parse, or require the binary cache.
    pub format: CachePolicy,
    /// Edge-buffer budget for streaming-capable algorithms
    /// (`--stream-budget`); `None` = unbounded in-memory chunks.
    pub stream_budget: Option<usize>,
    /// Structured event trace destination (`--profile`); `None` = run
    /// unobserved (the zero-cost default).
    pub profile: Option<PathBuf>,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext {
            data_dir: PathBuf::from("data"),
            out_dir: PathBuf::from("results"),
            seed: 42,
            scale_override: None,
            quick: false,
            datasets: DatasetId::ALL.to_vec(),
            threads: 0,
            format: CachePolicy::Auto,
            stream_budget: None,
            profile: None,
        }
    }
}

/// The one flag parser behind all seven experiment binaries: `--datasets`,
/// `--scale`, `--seed`, `--quick`, `--threads`, `--data-dir`, `--out-dir`,
/// `--format`, `--stream-budget`, `--profile`. [`HarnessArgs::parse`]
/// accumulates raw flag values; [`HarnessArgs::into_context`] resolves
/// them over the defaults.
#[derive(Clone, Debug, Default)]
pub struct HarnessArgs {
    /// `--data-dir` value, when given.
    pub data_dir: Option<PathBuf>,
    /// `--out-dir` value, when given.
    pub out_dir: Option<PathBuf>,
    /// `--seed` value, when given.
    pub seed: Option<u64>,
    /// `--scale` value, when given (validated to `(0, 1]`).
    pub scale: Option<f64>,
    /// `--quick` presence.
    pub quick: bool,
    /// `--threads` value, when given.
    pub threads: Option<usize>,
    /// `--datasets` value, when given.
    pub datasets: Option<Vec<DatasetId>>,
    /// `--format` value, when given.
    pub format: Option<CachePolicy>,
    /// `--stream-budget` value, when given (validated to `> 0`).
    pub stream_budget: Option<usize>,
    /// `--profile` value, when given.
    pub profile: Option<PathBuf>,
}

impl HarnessArgs {
    /// Parses the shared flags from an argument list (excluding `argv[0]`).
    ///
    /// # Errors
    ///
    /// [`HarnessError::Usage`] on an unknown flag, a missing value, or a
    /// value that fails to parse.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, HarnessError> {
        let mut parsed = HarnessArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut value_of = |flag: &str| {
                iter.next()
                    .ok_or_else(|| HarnessError::Usage(format!("flag {flag} requires a value")))
            };
            match arg.as_str() {
                "--data-dir" => parsed.data_dir = Some(PathBuf::from(value_of("--data-dir")?)),
                "--out-dir" => parsed.out_dir = Some(PathBuf::from(value_of("--out-dir")?)),
                "--seed" => {
                    parsed.seed =
                        Some(value_of("--seed")?.parse().map_err(|_| {
                            HarnessError::Usage("--seed takes an integer".to_string())
                        })?)
                }
                "--scale" => {
                    let s: f64 = value_of("--scale")?
                        .parse()
                        .map_err(|_| HarnessError::Usage("--scale takes a float".to_string()))?;
                    if !(s > 0.0 && s <= 1.0) {
                        return Err(HarnessError::Usage("--scale must be in (0, 1]".to_string()));
                    }
                    parsed.scale = Some(s);
                }
                "--quick" => parsed.quick = true,
                "--threads" => {
                    parsed.threads = Some(value_of("--threads")?.parse().map_err(|_| {
                        HarnessError::Usage("--threads takes an integer".to_string())
                    })?)
                }
                "--datasets" => {
                    let list = value_of("--datasets")?;
                    parsed.datasets = Some(
                        list.split(',')
                            .map(|tok| parse_dataset(tok.trim()))
                            .collect::<Result<_, _>>()?,
                    );
                }
                "--format" => {
                    parsed.format = Some(match value_of("--format")?.as_str() {
                        "auto" => CachePolicy::Auto,
                        "text" => CachePolicy::TextOnly,
                        "bin" => CachePolicy::BinaryOnly,
                        other => {
                            return Err(HarnessError::Usage(format!(
                                "--format must be auto, text, or bin (got {other})"
                            )))
                        }
                    });
                }
                "--stream-budget" => {
                    let budget: usize = value_of("--stream-budget")?.parse().map_err(|_| {
                        HarnessError::Usage("--stream-budget takes an integer".to_string())
                    })?;
                    if budget == 0 {
                        return Err(HarnessError::Usage(
                            "--stream-budget must be > 0".to_string(),
                        ));
                    }
                    parsed.stream_budget = Some(budget);
                }
                "--profile" => parsed.profile = Some(PathBuf::from(value_of("--profile")?)),
                other => {
                    return Err(HarnessError::Usage(format!(
                        "unknown flag {other}; supported: --datasets --scale --seed --quick \
                         --threads --data-dir --out-dir --format --stream-budget --profile"
                    )))
                }
            }
        }
        Ok(parsed)
    }

    /// Resolves the parsed flags over the [`ExperimentContext`] defaults.
    pub fn into_context(self) -> ExperimentContext {
        let defaults = ExperimentContext::default();
        ExperimentContext {
            data_dir: self.data_dir.unwrap_or(defaults.data_dir),
            out_dir: self.out_dir.unwrap_or(defaults.out_dir),
            seed: self.seed.unwrap_or(defaults.seed),
            scale_override: self.scale,
            quick: self.quick,
            datasets: self.datasets.unwrap_or(defaults.datasets),
            threads: self.threads.unwrap_or(defaults.threads),
            format: self.format.unwrap_or(defaults.format),
            stream_budget: self.stream_budget,
            profile: self.profile,
        }
    }

    /// Parses and resolves, printing the error and exiting with status 2
    /// on failure — the front door for the experiment binaries.
    pub fn parse_or_exit<I: IntoIterator<Item = String>>(args: I) -> ExperimentContext {
        match Self::parse(args) {
            Ok(parsed) => parsed.into_context(),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
}

impl ExperimentContext {
    /// Parses the common flags from an argument list (excluding `argv[0]`)
    /// via [`HarnessArgs::parse`].
    ///
    /// # Errors
    ///
    /// [`HarnessError::Usage`] on an unknown flag, a missing value, or a
    /// value that fails to parse.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, HarnessError> {
        HarnessArgs::parse(args).map(HarnessArgs::into_context)
    }

    /// [`parse`](Self::parse), but prints the error and exits with status 2
    /// on failure (see [`HarnessArgs::parse_or_exit`]).
    pub fn parse_or_exit<I: IntoIterator<Item = String>>(args: I) -> Self {
        HarnessArgs::parse_or_exit(args)
    }

    /// The worker-thread count experiments should use (`--threads`, with 0
    /// resolved to the machine's available parallelism).
    pub fn worker_threads(&self) -> usize {
        match self.threads {
            0 => tlp_core::available_threads(),
            t => t,
        }
    }

    /// The scale a dataset will be instantiated at under these options.
    pub fn scale_for(&self, spec: &DatasetSpec) -> f64 {
        let base = self.scale_override.unwrap_or(spec.default_scale);
        if self.quick {
            // Cap at ~60k edges for smoke runs.
            let cap = 60_000.0 / spec.edges as f64;
            base.min(cap).clamp(1e-4, 1.0)
        } else {
            base
        }
    }

    /// Loads one dataset (real file if present, synthetic otherwise).
    ///
    /// # Errors
    ///
    /// [`HarnessError::Dataset`] when a real file exists but fails to parse
    /// (the synthetic path is infallible).
    pub fn load(
        &self,
        id: DatasetId,
    ) -> Result<(CsrGraph, &'static DatasetSpec, f64), HarnessError> {
        let spec = DatasetSpec::get(id);
        let scale = self.scale_for(spec);
        let ds = loader::load_with(spec, &self.data_dir, scale, self.seed, self.format)
            .map_err(|source| HarnessError::Dataset { id, source })?;
        Ok((ds.graph, spec, scale))
    }

    /// Runs `f` under this context's profiling observer.
    ///
    /// With `--profile PATH`, every structured event the workspace emits
    /// during `f` is appended to PATH as JSONL (inspect with
    /// `tlp-obs-report`); without it, `f` runs unobserved at zero cost.
    /// Observation is passive either way — `f`'s results are bit-identical
    /// in both modes.
    ///
    /// # Errors
    ///
    /// `f`'s own error, or [`HarnessError::Io`] when the trace file cannot
    /// be created or flushed.
    pub fn observed<T>(
        &self,
        f: impl FnOnce() -> Result<T, HarnessError>,
    ) -> Result<T, HarnessError> {
        let Some(path) = &self.profile else {
            return f();
        };
        let observer = tlp_obs::JsonlObserver::create(path)
            .map_err(|e| HarnessError::io(format!("create profile trace {}", path.display()), e))?;
        let (result, observer) = tlp_obs::with_observer(observer, f);
        let value = result?;
        observer
            .finish()
            .map_err(|e| HarnessError::io(format!("flush profile trace {}", path.display()), e))?;
        eprintln!("profile trace written to {}", path.display());
        Ok(value)
    }

    /// Ensures the output directory exists and returns a path inside it.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Io`] when the output directory cannot be created.
    pub fn out_path(&self, file: &str) -> Result<PathBuf, HarnessError> {
        std::fs::create_dir_all(&self.out_dir).map_err(|e| {
            HarnessError::io(
                format!("create output directory {}", self.out_dir.display()),
                e,
            )
        })?;
        Ok(self.out_dir.join(file))
    }
}

fn parse_dataset(token: &str) -> Result<DatasetId, HarnessError> {
    DatasetId::ALL
        .into_iter()
        .find(|id| id.to_string().eq_ignore_ascii_case(token))
        .ok_or_else(|| HarnessError::Usage(format!("unknown dataset {token}; expected G1..G9")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExperimentContext, HarnessError> {
        ExperimentContext::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let ctx = parse(&[]).unwrap();
        assert_eq!(ctx.seed, 42);
        assert_eq!(ctx.datasets.len(), 9);
        assert!(!ctx.quick);
    }

    #[test]
    fn parses_all_flags() {
        let ctx = parse(&[
            "--datasets",
            "G1,g3",
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--quick",
            "--threads",
            "3",
            "--data-dir",
            "/d",
            "--out-dir",
            "/o",
        ])
        .unwrap();
        assert_eq!(ctx.datasets, vec![DatasetId::G1, DatasetId::G3]);
        assert_eq!(ctx.scale_override, Some(0.5));
        assert_eq!(ctx.seed, 7);
        assert!(ctx.quick);
        assert_eq!(ctx.threads, 3);
        assert_eq!(ctx.worker_threads(), 3);
        assert_eq!(ctx.data_dir, PathBuf::from("/d"));
    }

    #[test]
    fn unknown_flag_is_a_usage_error() {
        let err = parse(&["--frobnicate"]).unwrap_err();
        assert!(matches!(err, HarnessError::Usage(_)));
        assert!(err.to_string().contains("unknown flag"));
    }

    #[test]
    fn unknown_dataset_is_a_usage_error() {
        let err = parse(&["--datasets", "G42"]).unwrap_err();
        assert!(err.to_string().contains("unknown dataset"));
    }

    #[test]
    fn missing_value_and_bad_parse_are_usage_errors() {
        assert!(parse(&["--seed"])
            .unwrap_err()
            .to_string()
            .contains("requires a value"));
        assert!(parse(&["--seed", "abc"])
            .unwrap_err()
            .to_string()
            .contains("integer"));
        assert!(parse(&["--scale", "1.5"])
            .unwrap_err()
            .to_string()
            .contains("(0, 1]"));
    }

    #[test]
    fn format_and_stream_budget_flags_parse() {
        let ctx = parse(&["--format", "bin", "--stream-budget", "4096"]).unwrap();
        assert_eq!(ctx.format, CachePolicy::BinaryOnly);
        assert_eq!(ctx.stream_budget, Some(4096));
        let ctx = parse(&["--format", "text"]).unwrap();
        assert_eq!(ctx.format, CachePolicy::TextOnly);
        assert_eq!(ctx.stream_budget, None);
        assert_eq!(parse(&[]).unwrap().format, CachePolicy::Auto);
    }

    #[test]
    fn bad_format_and_budget_are_usage_errors() {
        assert!(parse(&["--format", "yaml"])
            .unwrap_err()
            .to_string()
            .contains("auto, text, or bin"));
        assert!(parse(&["--stream-budget", "0"])
            .unwrap_err()
            .to_string()
            .contains("> 0"));
        assert!(parse(&["--stream-budget", "x"])
            .unwrap_err()
            .to_string()
            .contains("integer"));
    }

    #[test]
    fn profile_flag_parses_and_defaults_off() {
        let ctx = parse(&["--profile", "/tmp/trace.jsonl"]).unwrap();
        assert_eq!(ctx.profile, Some(PathBuf::from("/tmp/trace.jsonl")));
        assert_eq!(parse(&[]).unwrap().profile, None);
        assert!(parse(&["--profile"])
            .unwrap_err()
            .to_string()
            .contains("requires a value"));
    }

    #[test]
    fn observed_without_profile_is_transparent() {
        let ctx = parse(&[]).unwrap();
        let value = ctx.observed(|| Ok(7)).unwrap();
        assert_eq!(value, 7);
    }

    #[test]
    fn observed_with_profile_writes_a_decodable_trace() {
        let dir = std::env::temp_dir().join(format!("tlp-ctx-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let ctx = parse(&["--profile", path.to_str().unwrap()]).unwrap();
        let value = ctx
            .observed(|| {
                let _span = tlp_obs::span("unit");
                tlp_obs::counter("unit.ticks", 3);
                Ok(1)
            })
            .unwrap();
        assert_eq!(value, 1);
        let trace = tlp_obs::read_jsonl(&path).unwrap();
        assert!(!trace.truncated_tail);
        assert_eq!(trace.events.len(), 3, "open + counter + close");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn harness_args_resolve_over_defaults() {
        let args = HarnessArgs::parse(["--seed".to_string(), "9".to_string()]).unwrap();
        assert_eq!(args.seed, Some(9));
        assert_eq!(args.threads, None);
        let ctx = args.into_context();
        assert_eq!(ctx.seed, 9);
        assert_eq!(ctx.threads, 0);
        assert_eq!(ctx.out_dir, PathBuf::from("results"));
    }

    #[test]
    fn quick_caps_scale() {
        let ctx = parse(&["--quick"]).unwrap();
        let spec = tlp_datasets::DatasetSpec::get(DatasetId::G8); // 905k edges
        let scale = ctx.scale_for(spec);
        assert!(scale * spec.edges as f64 <= 61_000.0);
        let small = tlp_datasets::DatasetSpec::get(DatasetId::G1); // 25k edges
        assert_eq!(ctx.scale_for(small), 1.0);
    }
}
