//! Typed errors for the experiment harness.

use std::fmt;

/// Everything that can go wrong while parsing experiment flags, loading a
/// dataset, running a partitioner, or writing result files.
///
/// The harness binaries render these with [`fmt::Display`] and exit
/// non-zero instead of panicking, so a typo'd flag or a read-only results
/// directory produces a one-line diagnosis rather than a backtrace.
#[derive(Debug)]
pub enum HarnessError {
    /// A CLI flag was unknown, malformed, or missing its value.
    Usage(String),
    /// A dataset file exists but failed to load or parse.
    Dataset {
        /// The dataset being loaded.
        id: tlp_datasets::DatasetId,
        /// The underlying load failure.
        source: tlp_graph::GraphError,
    },
    /// A partitioner failed during an experiment run.
    Partition {
        /// What was running when it failed.
        context: String,
        /// The underlying partitioner error.
        source: tlp_core::PartitionError,
    },
    /// A result file (or the output directory itself) failed to write.
    Io {
        /// What was being written.
        context: String,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
}

impl HarnessError {
    /// Wraps an I/O error with a description of what was being written.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        HarnessError::Io {
            context: context.into(),
            source,
        }
    }

    /// Wraps a partitioner error with a description of what was running.
    pub fn partition(context: impl Into<String>, source: tlp_core::PartitionError) -> Self {
        HarnessError::Partition {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Usage(message) => write!(f, "{message}"),
            HarnessError::Dataset { id, source } => {
                write!(f, "failed to load {id}: {source}")
            }
            HarnessError::Partition { context, source } => {
                write!(f, "{context}: {source}")
            }
            HarnessError::Io { context, source } => {
                write!(f, "{context}: {source}")
            }
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Usage(_) => None,
            HarnessError::Dataset { source, .. } => Some(source),
            HarnessError::Partition { source, .. } => Some(source),
            HarnessError::Io { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line_and_sourced() {
        use std::error::Error as _;
        let e = HarnessError::io(
            "write table3.csv",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        assert_eq!(e.to_string(), "write table3.csv: denied");
        assert!(e.source().is_some());
        assert!(HarnessError::Usage("bad flag".into()).source().is_none());
    }
}
