//! Table IV: ΔRF = RF(METIS) − RF(TLP) per dataset and partition count.

use crate::experiment::RfRecord;
use crate::report::{write_csv, TextTable};
use crate::{ExperimentContext, HarnessError, PARTITION_COUNTS};

/// Computes Table IV from Fig. 8 records (reuses them when the caller
/// already ran [`crate::fig8::run`]; the `table4` binary runs Fig. 8 first).
///
/// A positive ΔRF means TLP beat METIS on that configuration.
///
/// # Errors
///
/// [`HarnessError::Io`] when the CSV fails to write.
pub fn from_records(ctx: &ExperimentContext, records: &[RfRecord]) -> Result<String, HarnessError> {
    let datasets: Vec<String> = {
        let mut v = Vec::new();
        for r in records {
            if !v.contains(&r.dataset) {
                v.push(r.dataset.clone());
            }
        }
        v
    };

    let delta = |dataset: &str, p: usize| -> Option<f64> {
        let rf_of = |alg: &str| {
            records
                .iter()
                .find(|r| r.dataset == dataset && r.p == p && r.algorithm == alg)
                .map(|r| r.rf)
        };
        Some(rf_of("METIS")? - rf_of("TLP")?)
    };

    let mut table = TextTable::new();
    let mut header = vec!["p".to_string()];
    header.extend(datasets.iter().cloned());
    header.push("Average".to_string());
    table.row(header);

    let mut csv_rows = Vec::new();
    for &p in &PARTITION_COUNTS {
        let mut row = vec![format!("p={p}")];
        let mut sum = 0.0;
        let mut count = 0usize;
        for d in &datasets {
            match delta(d, p) {
                Some(dv) => {
                    row.push(format!("{dv:+.3}"));
                    csv_rows.push(vec![d.clone(), p.to_string(), format!("{dv}")]);
                    sum += dv;
                    count += 1;
                }
                None => row.push("-".to_string()),
            }
        }
        let avg = if count == 0 { 0.0 } else { sum / count as f64 };
        row.push(format!("{avg:+.3}"));
        csv_rows.push(vec!["Average".into(), p.to_string(), format!("{avg}")]);
        table.row(row);
    }

    let rendered = format!(
        "Table IV — ΔRF = RF(METIS) − RF(TLP)  (positive: TLP wins)\n{}",
        table.render()
    );
    println!("{rendered}");
    write_csv(
        ctx.out_path("table4.csv")?,
        &["dataset", "p", "delta_rf"],
        &csv_rows,
    )
    .map_err(|e| HarnessError::io("write table4.csv", e))?;
    Ok(rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(dataset: &str, algorithm: &str, p: usize, rf: f64) -> RfRecord {
        RfRecord {
            dataset: dataset.into(),
            algorithm: algorithm.into(),
            p,
            rf,
            balance: 1.0,
            seconds: 0.0,
        }
    }

    #[test]
    fn computes_deltas_and_average() {
        let records = vec![
            rec("G1", "METIS", 10, 2.0),
            rec("G1", "TLP", 10, 1.5),
            rec("G2", "METIS", 10, 1.8),
            rec("G2", "TLP", 10, 2.0),
        ];
        let ctx = ExperimentContext {
            out_dir: std::env::temp_dir().join(format!("tlp-t4-{}", std::process::id())),
            ..ExperimentContext::default()
        };
        let out = from_records(&ctx, &records).unwrap();
        assert!(out.contains("+0.500"), "{out}");
        assert!(out.contains("-0.200"), "{out}");
        assert!(out.contains("+0.150"), "missing average: {out}");
        std::fs::remove_dir_all(&ctx.out_dir).unwrap();
    }
}
