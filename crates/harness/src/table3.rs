//! Table III: dataset statistics (paper values vs. instantiated graphs).

use crate::report::{write_csv, TextTable};
use crate::{ExperimentContext, HarnessError};
use tlp_core::observed_parallel_map;
use tlp_graph::stats::GraphStats;

/// Runs the Table III experiment: loads every selected dataset and prints
/// its statistics next to the paper's values.
///
/// Returns the rendered table (also printed to stdout, with a CSV in the
/// output directory).
///
/// # Errors
///
/// [`HarnessError`] when a dataset fails to load or the CSV fails to write.
pub fn run(ctx: &ExperimentContext) -> Result<String, HarnessError> {
    let mut table = TextTable::new();
    table.row([
        "graph",
        "notation",
        "|V| paper",
        "|E| paper",
        "scale",
        "|V| ours",
        "|E| ours",
        "avg deg",
        "components",
    ]);
    let mut csv_rows = Vec::new();

    // Dataset instantiation (file parse or synthetic generation) dominates
    // here, so load and summarize the datasets in parallel.
    let loaded = observed_parallel_map(ctx.worker_threads(), &ctx.datasets, |_, &id| {
        let (graph, spec, scale) = ctx.load(id)?;
        let stats = GraphStats::of(&graph);
        Ok::<_, HarnessError>((id, spec, scale, stats))
    });
    for item in loaded {
        let (id, spec, scale, stats) = item?;
        table.row([
            spec.name.to_string(),
            id.to_string(),
            spec.vertices.to_string(),
            spec.edges.to_string(),
            format!("{scale:.4}"),
            stats.num_vertices.to_string(),
            stats.num_edges.to_string(),
            format!("{:.2}", stats.average_degree),
            stats.components.to_string(),
        ]);
        csv_rows.push(vec![
            id.to_string(),
            spec.name.to_string(),
            spec.vertices.to_string(),
            spec.edges.to_string(),
            format!("{scale}"),
            stats.num_vertices.to_string(),
            stats.num_edges.to_string(),
            format!("{}", stats.average_degree),
            stats.components.to_string(),
        ]);
    }

    let rendered = table.render();
    println!("Table III — dataset statistics\n{rendered}");
    write_csv(
        ctx.out_path("table3.csv")?,
        &[
            "dataset",
            "name",
            "v_paper",
            "e_paper",
            "scale",
            "v_ours",
            "e_ours",
            "avg_degree",
            "components",
        ],
        &csv_rows,
    )
    .map_err(|e| HarnessError::io("write table3.csv", e))?;
    Ok(rendered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_datasets::DatasetId;

    #[test]
    fn runs_on_a_small_dataset() {
        let ctx = ExperimentContext {
            datasets: vec![DatasetId::G1],
            scale_override: Some(0.05),
            out_dir: std::env::temp_dir().join(format!("tlp-t3-{}", std::process::id())),
            ..ExperimentContext::default()
        };
        let out = run(&ctx).unwrap();
        assert!(out.contains("email-Eu-core"));
        assert!(ctx.out_dir.join("table3.csv").is_file());
        std::fs::remove_dir_all(&ctx.out_dir).unwrap();
    }
}
