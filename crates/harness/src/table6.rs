//! Table VI: average degree of the vertices selected in each TLP stage.

use crate::report::{write_csv, TextTable};
use crate::{ExperimentContext, HarnessError, PARTITION_COUNTS};
use tlp_core::{observed_parallel_map, TlpConfig, TwoStageLocalPartitioner};

/// One Table VI cell pair.
#[derive(Clone, Debug, PartialEq)]
pub struct StageDegreeRow {
    /// Dataset notation.
    pub dataset: String,
    /// Number of partitions.
    pub p: usize,
    /// Average static degree of Stage I selections.
    pub stage1: f64,
    /// Average static degree of Stage II selections.
    pub stage2: f64,
}

/// Runs TLP with tracing on every dataset and partition count, reporting the
/// average selected-vertex degree per stage.
///
/// The paper's headline observation — Stage I picks high-degree core
/// vertices, Stage II expands with low-degree neighbors — shows up as
/// `stage1 >> stage2` on every row.
///
/// # Errors
///
/// [`HarnessError`] when a dataset fails to load, a TLP run fails, or the
/// CSV fails to write.
pub fn run(ctx: &ExperimentContext) -> Result<Vec<StageDegreeRow>, HarnessError> {
    let mut rows = Vec::new();
    for &id in &ctx.datasets {
        let (graph, _, scale) = ctx.load(id)?;
        eprintln!("table6: {id} at scale {scale:.4}");
        let per_p = observed_parallel_map(ctx.worker_threads(), &PARTITION_COUNTS, |_, &p| {
            let tlp = TwoStageLocalPartitioner::new(TlpConfig::new().seed(ctx.seed));
            let (_, trace) = tlp
                .partition_with_trace(&graph, p)
                .map_err(|e| HarnessError::partition(format!("TLP on {id} p={p}"), e))?;
            let summary = trace.stage_degree_summary();
            Ok(StageDegreeRow {
                dataset: id.to_string(),
                p,
                stage1: summary.stage1_avg_degree,
                stage2: summary.stage2_avg_degree,
            })
        });
        for row in per_p {
            rows.push(row?);
        }
    }

    let mut table = TextTable::new();
    let mut header = vec!["dataset".to_string()];
    for &p in &PARTITION_COUNTS {
        header.push(format!("p={p} StageI"));
        header.push(format!("p={p} StageII"));
    }
    table.row(header);
    let datasets: Vec<String> = {
        let mut v = Vec::new();
        for r in &rows {
            if !v.contains(&r.dataset) {
                v.push(r.dataset.clone());
            }
        }
        v
    };
    for d in &datasets {
        let mut row = vec![d.clone()];
        for &p in &PARTITION_COUNTS {
            let cell = rows.iter().find(|r| &r.dataset == d && r.p == p);
            match cell {
                Some(r) => {
                    row.push(format!("{:.2}", r.stage1));
                    row.push(format!("{:.2}", r.stage2));
                }
                None => {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
        }
        table.row(row);
    }
    println!(
        "Table VI — average degree of selected vertices per stage\n{}",
        table.render()
    );

    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.p.to_string(),
                format!("{}", r.stage1),
                format!("{}", r.stage2),
            ]
        })
        .collect();
    write_csv(
        ctx.out_path("table6.csv")?,
        &["dataset", "p", "stage1_avg_degree", "stage2_avg_degree"],
        &csv_rows,
    )
    .map_err(|e| HarnessError::io("write table6.csv", e))?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_datasets::DatasetId;

    #[test]
    fn stage1_selects_higher_degrees_than_stage2() {
        let ctx = ExperimentContext {
            datasets: vec![DatasetId::G1],
            scale_override: Some(0.25),
            out_dir: std::env::temp_dir().join(format!("tlp-t6-{}", std::process::id())),
            ..ExperimentContext::default()
        };
        let rows = run(&ctx).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.stage1 > r.stage2,
                "expected Stage I >> Stage II, got {} vs {} (p={})",
                r.stage1,
                r.stage2,
                r.p
            );
        }
        std::fs::remove_dir_all(&ctx.out_dir).unwrap();
    }
}
