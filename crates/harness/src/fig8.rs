//! Fig. 8: replication factors of TLP, METIS, LDG, DBH, and Random on every
//! dataset for p = 10, 15, 20.

use crate::experiment::{run_matrix, RfRecord, PAPER_LINEUP};
use crate::report::{write_csv, write_json, TextTable};
use crate::{ExperimentContext, HarnessError, PARTITION_COUNTS};

/// Runs the Fig. 8 comparison and returns all records.
///
/// The `(p, algorithm)` matrix of each dataset runs across
/// `ctx.worker_threads()` threads. Prints one table per partition count
/// (mirroring Fig. 8's three panels) and writes `fig8.csv` / `fig8.json`
/// to the output directory.
///
/// # Errors
///
/// [`HarnessError`] when a dataset fails to load or a result file fails to
/// write.
pub fn run(ctx: &ExperimentContext) -> Result<Vec<RfRecord>, HarnessError> {
    let mut records: Vec<RfRecord> = Vec::new();

    for &id in &ctx.datasets {
        let (graph, spec, scale) = ctx.load(id)?;
        eprintln!(
            "fig8: {id} ({}) at scale {scale:.4}: {} vertices, {} edges",
            spec.name,
            graph.num_vertices(),
            graph.num_edges()
        );
        let dataset_records = run_matrix(&graph, id, &PARTITION_COUNTS, &PAPER_LINEUP, ctx);
        for record in dataset_records {
            eprintln!(
                "  p={:2} {:>7}: RF = {:.3} ({:.2}s)",
                record.p, record.algorithm, record.rf, record.seconds
            );
            records.push(record);
        }
    }

    for &p in &PARTITION_COUNTS {
        println!("{}", render_panel(&records, p));
    }

    let csv_rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.algorithm.clone(),
                r.p.to_string(),
                format!("{}", r.rf),
                format!("{}", r.balance),
                format!("{}", r.seconds),
            ]
        })
        .collect();
    write_csv(
        ctx.out_path("fig8.csv")?,
        &["dataset", "algorithm", "p", "rf", "balance", "seconds"],
        &csv_rows,
    )
    .map_err(|e| HarnessError::io("write fig8.csv", e))?;
    write_json(ctx.out_path("fig8.json")?, &records)
        .map_err(|e| HarnessError::io("write fig8.json", e))?;
    Ok(records)
}

/// Renders one Fig. 8 panel (a fixed `p`) as a dataset x algorithm table.
pub fn render_panel(records: &[RfRecord], p: usize) -> String {
    let mut algorithms: Vec<String> = Vec::new();
    let mut datasets: Vec<String> = Vec::new();
    for r in records.iter().filter(|r| r.p == p) {
        if !algorithms.contains(&r.algorithm) {
            algorithms.push(r.algorithm.clone());
        }
        if !datasets.contains(&r.dataset) {
            datasets.push(r.dataset.clone());
        }
    }
    let mut table = TextTable::new();
    let mut header = vec!["dataset".to_string()];
    header.extend(algorithms.iter().cloned());
    table.row(header);
    for d in &datasets {
        let mut row = vec![d.clone()];
        for a in &algorithms {
            let cell = records
                .iter()
                .find(|r| r.p == p && &r.dataset == d && &r.algorithm == a)
                .map(|r| format!("{:.3}", r.rf))
                .unwrap_or_else(|| "-".to_string());
            row.push(cell);
        }
        table.row(row);
    }
    format!("Fig. 8 — replication factor, p = {p}\n{}", table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_panel_formats_grid() {
        let records = vec![
            RfRecord {
                dataset: "G1".into(),
                algorithm: "TLP".into(),
                p: 10,
                rf: 1.5,
                balance: 1.0,
                seconds: 0.1,
            },
            RfRecord {
                dataset: "G1".into(),
                algorithm: "Random".into(),
                p: 10,
                rf: 3.2,
                balance: 1.0,
                seconds: 0.0,
            },
        ];
        let panel = render_panel(&records, 10);
        assert!(panel.contains("TLP"));
        assert!(panel.contains("1.500"));
        assert!(panel.contains("3.200"));
        // Missing (dataset, algorithm) combinations render as "-".
        let empty = render_panel(&records, 15);
        assert!(empty.contains("p = 15"));
    }
}
