//! Running partitioners and collecting records.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use tlp_baselines::{DbhPartitioner, LdgPartitioner, RandomPartitioner, VertexOrder};
use tlp_core::{
    parallel_map, EdgePartitioner, PartitionMetrics, TlpConfig, TwoStageLocalPartitioner,
};
use tlp_datasets::DatasetId;
use tlp_graph::CsrGraph;
use tlp_metis::{MetisConfig, MetisPartitioner};

/// One (dataset, algorithm, p) measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RfRecord {
    /// Dataset notation ("G1".."G9").
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of partitions.
    pub p: usize,
    /// Replication factor.
    pub rf: f64,
    /// Load balance (max load over ideal load).
    pub balance: f64,
    /// Wall-clock partitioning time in seconds.
    pub seconds: f64,
}

/// Runs one partitioner and computes its metrics and wall time.
///
/// # Panics
///
/// Panics if the partitioner fails (configuration errors are programmer
/// errors inside the harness).
pub fn run_one(
    graph: &CsrGraph,
    algorithm: &dyn EdgePartitioner,
    dataset: DatasetId,
    p: usize,
) -> RfRecord {
    let start = Instant::now();
    let partition = algorithm
        .partition(graph, p)
        .unwrap_or_else(|e| panic!("{} failed on {dataset}: {e}", algorithm.name()));
    let seconds = start.elapsed().as_secs_f64();
    let metrics = PartitionMetrics::compute(graph, &partition);
    RfRecord {
        dataset: dataset.to_string(),
        algorithm: algorithm.name().to_string(),
        p,
        rf: metrics.replication_factor,
        balance: metrics.balance,
        seconds,
    }
}

/// Runs the full `(p, algorithm)` matrix for one graph across worker
/// threads, returning records in the same order as the sequential
/// `for p { for algorithm { ... } }` loop.
///
/// `make(i)` constructs the `i`-th line-up algorithm; each cell builds its
/// own instance, so partitioners need not be `Sync`. Wall-clock columns are
/// per-cell (they measure the partitioner, not the matrix), so parallel
/// execution does not distort them beyond ordinary scheduling noise.
pub fn run_matrix<F>(
    graph: &CsrGraph,
    dataset: DatasetId,
    partition_counts: &[usize],
    lineup_size: usize,
    threads: usize,
    make: F,
) -> Vec<RfRecord>
where
    F: Fn(usize) -> Box<dyn EdgePartitioner> + Sync,
{
    let cells: Vec<(usize, usize)> = partition_counts
        .iter()
        .flat_map(|&p| (0..lineup_size).map(move |a| (p, a)))
        .collect();
    parallel_map(threads, &cells, |_, &(p, a)| {
        run_one(graph, make(a).as_ref(), dataset, p)
    })
}

/// The paper's Fig. 8 line-up: TLP, METIS, LDG, DBH, Random.
pub fn paper_lineup(seed: u64) -> Vec<Box<dyn EdgePartitioner>> {
    vec![
        Box::new(TwoStageLocalPartitioner::new(TlpConfig::new().seed(seed))),
        Box::new(MetisPartitioner::new(MetisConfig {
            seed,
            ..MetisConfig::default()
        })),
        Box::new(LdgPartitioner::new(VertexOrder::Random(seed))),
        Box::new(DbhPartitioner::new(seed)),
        Box::new(RandomPartitioner::new(seed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::generators::chung_lu;

    #[test]
    fn run_one_produces_sane_record() {
        let g = chung_lu(200, 800, 2.2, 1);
        let algo = RandomPartitioner::new(0);
        let rec = run_one(&g, &algo, DatasetId::G1, 4);
        assert_eq!(rec.dataset, "G1");
        assert_eq!(rec.algorithm, "Random");
        assert_eq!(rec.p, 4);
        assert!(rec.rf >= 1.0);
        assert!(rec.balance >= 1.0);
        assert!(rec.seconds >= 0.0);
    }

    #[test]
    fn lineup_has_the_papers_five_algorithms() {
        let names: Vec<String> = paper_lineup(0)
            .iter()
            .map(|a| a.name().to_string())
            .collect();
        assert_eq!(names, vec!["TLP", "METIS", "LDG", "DBH", "Random"]);
    }
}
