//! Running algorithms through the unified pipeline registry and
//! collecting records.
//!
//! Every experiment cell resolves its algorithm **by name** in the
//! [`builtin_registry`] and consumes the
//! shared [`RunArtifact`], so the harness binaries
//! carry no per-algorithm wiring. When the context sets `--stream-budget`,
//! streaming-capable algorithms run their passes through a budgeted
//! source, bounding their peak edge-buffer memory.

use crate::ExperimentContext;
use serde::{Deserialize, Serialize};
use tlp_core::{observed_parallel_map, AlgoConfig, AlgorithmRegistry, RunArtifact};
use tlp_datasets::DatasetId;
use tlp_graph::{CsrGraph, CsrSource, EdgeSource};
use tlp_pipeline::builtin_registry;
use tlp_store::BudgetedCsrSource;

/// The paper's Fig. 8 line-up, as registry names.
pub const PAPER_LINEUP: [&str; 5] = ["tlp", "metis", "ldg", "dbh", "random"];

/// One (dataset, algorithm, p) measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RfRecord {
    /// Dataset notation ("G1".."G9").
    pub dataset: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of partitions.
    pub p: usize,
    /// Replication factor.
    pub rf: f64,
    /// Load balance (max load over ideal load).
    pub balance: f64,
    /// Wall-clock partitioning time in seconds.
    pub seconds: f64,
}

impl RfRecord {
    /// Projects a pipeline artifact onto a record row.
    pub fn from_artifact(dataset: DatasetId, artifact: &RunArtifact) -> Self {
        RfRecord {
            dataset: dataset.to_string(),
            algorithm: artifact.algorithm.clone(),
            p: artifact.num_partitions,
            rf: artifact.metrics.replication_factor,
            balance: artifact.metrics.balance,
            seconds: artifact.seconds,
        }
    }
}

/// Runs one registry algorithm over `graph` (through a budgeted source
/// when `stream_budget` is set) and projects the artifact onto a record.
///
/// # Panics
///
/// Panics if the spec fails to resolve or the algorithm fails —
/// configuration errors are programmer errors inside the harness.
pub fn run_one(
    registry: &AlgorithmRegistry,
    graph: &CsrGraph,
    spec: &str,
    dataset: DatasetId,
    p: usize,
    seed: u64,
    stream_budget: Option<usize>,
) -> RfRecord {
    let config = AlgoConfig::seeded(seed);
    let artifact = match stream_budget {
        Some(budget) => {
            let mut source = BudgetedCsrSource::new(graph, budget);
            run_spec(registry, &mut source, spec, &config, p)
        }
        None => {
            let mut source = CsrSource::new(graph);
            run_spec(registry, &mut source, spec, &config, p)
        }
    }
    .unwrap_or_else(|e| panic!("{spec} failed on {dataset}: {e}"));
    RfRecord::from_artifact(dataset, &artifact)
}

fn run_spec(
    registry: &AlgorithmRegistry,
    source: &mut dyn EdgeSource,
    spec: &str,
    config: &AlgoConfig,
    p: usize,
) -> Result<RunArtifact, tlp_core::PipelineError> {
    registry.run(spec, config, source, p)
}

/// Runs the full `(p, algorithm)` matrix for one graph across
/// `ctx.worker_threads()` threads, returning records in the same order as
/// the sequential `for p { for spec { ... } }` loop.
///
/// Each cell resolves its spec in one shared [`builtin_registry`] and runs
/// over its own source handle on the shared graph. Wall-clock columns are
/// per-cell (they measure the algorithm, not the matrix), so parallel
/// execution does not distort them beyond ordinary scheduling noise.
pub fn run_matrix(
    graph: &CsrGraph,
    dataset: DatasetId,
    partition_counts: &[usize],
    lineup: &[&str],
    ctx: &ExperimentContext,
) -> Vec<RfRecord> {
    let registry = builtin_registry();
    let cells: Vec<(usize, &str)> = partition_counts
        .iter()
        .flat_map(|&p| lineup.iter().map(move |&spec| (p, spec)))
        .collect();
    observed_parallel_map(ctx.worker_threads(), &cells, |_, &(p, spec)| {
        run_one(
            &registry,
            graph,
            spec,
            dataset,
            p,
            ctx.seed,
            ctx.stream_budget,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::generators::chung_lu;

    #[test]
    fn run_one_produces_sane_record() {
        let g = chung_lu(200, 800, 2.2, 1);
        let registry = builtin_registry();
        let rec = run_one(&registry, &g, "random", DatasetId::G1, 4, 0, None);
        assert_eq!(rec.dataset, "G1");
        assert_eq!(rec.algorithm, "Random");
        assert_eq!(rec.p, 4);
        assert!(rec.rf >= 1.0);
        assert!(rec.balance >= 1.0);
        assert!(rec.seconds >= 0.0);
    }

    #[test]
    fn lineup_has_the_papers_five_algorithms() {
        let registry = builtin_registry();
        let labels: Vec<&str> = PAPER_LINEUP
            .iter()
            .map(|spec| registry.entry_of(spec).expect("registered").label)
            .collect();
        assert_eq!(labels, vec!["TLP", "METIS", "LDG", "DBH", "Random"]);
    }

    #[test]
    fn stream_budget_does_not_change_streaming_results() {
        let g = chung_lu(300, 1200, 2.2, 7);
        let registry = builtin_registry();
        for spec in ["random", "dbh", "greedy", "hdrf"] {
            let unbounded = run_one(&registry, &g, spec, DatasetId::G1, 6, 3, None);
            let bounded = run_one(&registry, &g, spec, DatasetId::G1, 6, 3, Some(64));
            assert_eq!(unbounded.rf, bounded.rf, "{spec} RF drifted under budget");
            assert_eq!(unbounded.balance, bounded.balance, "{spec}");
        }
    }
}
