//! Cluster assembly: what each machine holds under an edge partition.

use tlp_core::EdgePartition;
use tlp_graph::{CsrGraph, EdgeId, VertexId};

/// Identifier of a simulated machine (same space as partition ids).
pub type MachineId = u32;

/// The materialized cluster state for one `(graph, partition)` pair.
///
/// Mirrors PowerGraph's data placement:
///
/// * each machine stores the edges assigned to it;
/// * every vertex incident to a machine's edges has a **replica** there;
/// * one replica per vertex is the **master** (here: the replica on the
///   machine holding most of the vertex's edges, ties to the lowest
///   machine id — PowerGraph's "balanced" placement heuristic).
#[derive(Clone, Debug)]
pub struct Cluster<'g> {
    graph: &'g CsrGraph,
    num_machines: usize,
    /// Edges held by each machine.
    local_edges: Vec<Vec<EdgeId>>,
    /// Machines holding a replica of each vertex (sorted).
    replicas: Vec<Vec<MachineId>>,
    /// Master machine of each vertex (`u32::MAX` for isolated vertices).
    master: Vec<MachineId>,
}

impl<'g> Cluster<'g> {
    /// Builds the cluster state for `partition` over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover exactly the graph's edges.
    pub fn new(graph: &'g CsrGraph, partition: &EdgePartition) -> Self {
        partition
            .validate_for(graph)
            .expect("partition must match graph");
        let p = partition.num_partitions();
        let n = graph.num_vertices();

        let mut local_edges: Vec<Vec<EdgeId>> = vec![Vec::new(); p];
        for e in 0..graph.num_edges() as EdgeId {
            local_edges[partition.partition_of(e) as usize].push(e);
        }

        let mut replicas: Vec<Vec<MachineId>> = vec![Vec::new(); n];
        let mut master = vec![MachineId::MAX; n];
        let mut counts: Vec<u32> = Vec::new();
        for v in graph.vertices() {
            counts.clear();
            counts.resize(p, 0);
            for (_, e) in graph.incident(v) {
                counts[partition.partition_of(e) as usize] += 1;
            }
            let vi = v as usize;
            for (k, &c) in counts.iter().enumerate() {
                if c > 0 {
                    replicas[vi].push(k as MachineId);
                }
            }
            if let Some((k, _)) = counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .max_by_key(|&(k, &c)| (c, std::cmp::Reverse(k)))
            {
                master[vi] = k as MachineId;
            }
        }

        Cluster {
            graph,
            num_machines: p,
            local_edges,
            replicas,
            master,
        }
    }

    /// Builds the cluster state from a pipeline [`RunArtifact`](tlp_core::RunArtifact)
    /// — any registry algorithm's output deploys directly onto a simulated
    /// cluster.
    ///
    /// # Panics
    ///
    /// Panics if the artifact's partition does not cover exactly the
    /// graph's edges (see [`Cluster::new`]).
    pub fn from_artifact(graph: &'g CsrGraph, artifact: &tlp_core::RunArtifact) -> Self {
        Cluster::new(graph, &artifact.partition)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// Number of machines (= partitions).
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// The edges held by machine `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn local_edges(&self, k: MachineId) -> &[EdgeId] {
        &self.local_edges[k as usize]
    }

    /// The machines holding a replica of `v` (sorted, possibly empty).
    pub fn replicas(&self, v: VertexId) -> &[MachineId] {
        &self.replicas[v as usize]
    }

    /// The master machine of `v`, or `None` for isolated vertices.
    pub fn master(&self, v: VertexId) -> Option<MachineId> {
        let m = self.master[v as usize];
        (m != MachineId::MAX).then_some(m)
    }

    /// Total replicas across all vertices (the RF numerator).
    pub fn total_replicas(&self) -> usize {
        self.replicas.iter().map(Vec::len).sum()
    }

    /// Sync messages one fully-active superstep costs: every non-master
    /// replica ships its accumulator to the master and receives the new
    /// state back.
    pub fn sync_messages_per_full_superstep(&self) -> usize {
        self.replicas
            .iter()
            .map(|r| 2 * r.len().saturating_sub(1))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlp_graph::GraphBuilder;

    fn cluster_of(assign: Vec<u32>, p: usize) -> (CsrGraph, EdgePartition) {
        // Path 0-1-2-3.
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3)])
            .build();
        let part = EdgePartition::new(p, assign).unwrap();
        (g, part)
    }

    #[test]
    fn replicas_and_masters_on_a_split_path() {
        let (g, part) = cluster_of(vec![0, 0, 1], 2);
        let c = Cluster::new(&g, &part);
        assert_eq!(c.num_machines(), 2);
        assert_eq!(c.local_edges(0), &[0, 1]);
        assert_eq!(c.local_edges(1), &[2]);
        // Vertex 2 is spanned: replicas on both machines, master where it
        // has more edges... one edge each -> tie -> machine 0.
        assert_eq!(c.replicas(2), &[0, 1]);
        assert_eq!(c.master(2), Some(0));
        // Vertex 1 lives only on machine 0.
        assert_eq!(c.replicas(1), &[0]);
        assert_eq!(c.master(1), Some(0));
    }

    #[test]
    fn master_follows_edge_majority() {
        // Star around 0 with 3 edges on machine 1, 1 edge on machine 0.
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (0, 2), (0, 3), (0, 4)])
            .build();
        let part = EdgePartition::new(2, vec![0, 1, 1, 1]).unwrap();
        let c = Cluster::new(&g, &part);
        assert_eq!(c.master(0), Some(1));
    }

    #[test]
    fn isolated_vertices_have_no_master() {
        let g = GraphBuilder::new()
            .reserve_vertices(3)
            .add_edge(0, 1)
            .build();
        let part = EdgePartition::new(1, vec![0]).unwrap();
        let c = Cluster::new(&g, &part);
        assert_eq!(c.master(2), None);
        assert!(c.replicas(2).is_empty());
    }

    #[test]
    fn sync_message_bound_matches_replica_count() {
        let (g, part) = cluster_of(vec![0, 1, 2], 3);
        let c = Cluster::new(&g, &part);
        // Vertices 1 and 2 have 2 replicas each -> 2 * 1 * 2 = 4 messages.
        assert_eq!(c.sync_messages_per_full_superstep(), 4);
        assert_eq!(c.total_replicas(), 6);
    }

    #[test]
    #[should_panic(expected = "partition must match graph")]
    fn mismatched_partition_panics() {
        let g = GraphBuilder::new().add_edges([(0, 1), (1, 2)]).build();
        let part = EdgePartition::new(2, vec![0]).unwrap();
        Cluster::new(&g, &part);
    }
}
