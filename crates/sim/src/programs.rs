//! Classic analytics vertex programs, each verified against a
//! single-machine reference implementation in the tests.

use crate::engine::VertexProgram;
use tlp_graph::{CsrGraph, VertexId};

/// PageRank with damping 0.85 over the undirected graph (each edge carries
/// rank both ways, normalized by degree).
///
/// States are `f64` ranks; convergence is reached when no rank moves by
/// more than [`PageRank::tolerance`].
#[derive(Clone, Copy, Debug)]
pub struct PageRank {
    /// Damping factor (0.85 in the classic formulation).
    pub damping: f64,
    /// Per-vertex convergence threshold.
    pub tolerance: f64,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank {
            damping: 0.85,
            tolerance: 1e-10,
        }
    }
}

/// PageRank state: the rank.
#[derive(Clone, Copy, Debug)]
pub struct Rank(pub f64);

impl PartialEq for Rank {
    fn eq(&self, other: &Self) -> bool {
        // Exact comparison on purpose: [`PageRank::apply`] returns the
        // previous state *unchanged* when a rank moves by no more than the
        // configured tolerance, so convergence detection (`new != old` in
        // the engine) is governed entirely by `PageRank::tolerance`. An
        // epsilon here would silently override a tighter tolerance.
        self.0 == other.0
    }
}

impl VertexProgram for PageRank {
    type State = Rank;
    type Gather = f64;

    fn init(&self, _v: VertexId, graph: &CsrGraph) -> Rank {
        Rank(1.0 / graph.num_vertices().max(1) as f64)
    }

    fn gather(&self, _v: VertexId, u: VertexId, u_state: &Rank, graph: &CsrGraph) -> f64 {
        u_state.0 / graph.degree(u) as f64
    }

    fn merge(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn apply(&self, _v: VertexId, state: &Rank, gathered: Option<f64>, graph: &CsrGraph) -> Rank {
        let n = graph.num_vertices().max(1) as f64;
        let sum = gathered.unwrap_or(0.0);
        let next = (1.0 - self.damping) / n + self.damping * sum;
        if (next - state.0).abs() <= self.tolerance {
            *state
        } else {
            Rank(next)
        }
    }
}

/// Connected components by min-label propagation: every vertex converges to
/// the smallest vertex id in its component.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnectedComponents;

impl VertexProgram for ConnectedComponents {
    type State = u32;
    type Gather = u32;

    fn init(&self, v: VertexId, _graph: &CsrGraph) -> u32 {
        v
    }

    fn gather(&self, _v: VertexId, _u: VertexId, u_state: &u32, _graph: &CsrGraph) -> u32 {
        *u_state
    }

    fn merge(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, state: &u32, gathered: Option<u32>, _graph: &CsrGraph) -> u32 {
        gathered.map_or(*state, |g| g.min(*state))
    }
}

/// Single-source shortest paths under unit edge weights (BFS distances).
///
/// Unreached vertices hold `u32::MAX`.
#[derive(Clone, Copy, Debug)]
pub struct ShortestPaths {
    /// The source vertex.
    pub source: VertexId,
}

impl VertexProgram for ShortestPaths {
    type State = u32;
    type Gather = u32;

    fn init(&self, v: VertexId, _graph: &CsrGraph) -> u32 {
        if v == self.source {
            0
        } else {
            u32::MAX
        }
    }

    fn gather(&self, _v: VertexId, _u: VertexId, u_state: &u32, _graph: &CsrGraph) -> u32 {
        u_state.saturating_add(1)
    }

    fn merge(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, state: &u32, gathered: Option<u32>, _graph: &CsrGraph) -> u32 {
        gathered.map_or(*state, |g| g.min(*state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, Engine};
    use tlp_core::{EdgePartitioner, TlpConfig, TwoStageLocalPartitioner};
    use tlp_graph::generators::power_law_community;
    use tlp_graph::traversal;

    fn partitioned(graph: &CsrGraph, p: usize) -> tlp_core::EdgePartition {
        TwoStageLocalPartitioner::new(TlpConfig::new().seed(3))
            .partition(graph, p)
            .unwrap()
    }

    #[test]
    fn connected_components_matches_reference() {
        let g = tlp_graph::GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 5)])
            .build();
        let part = partitioned(&g, 3);
        let cluster = Cluster::new(&g, &part);
        let run = Engine::new(&cluster).run(&ConnectedComponents, 100);
        assert!(run.converged);
        let reference = traversal::ConnectedComponents::find(&g);
        for a in g.vertices() {
            for b in g.vertices() {
                assert_eq!(
                    run.states[a as usize] == run.states[b as usize],
                    reference.same_component(a, b),
                    "vertices {a} and {b} disagree"
                );
            }
        }
    }

    #[test]
    fn sssp_matches_bfs_distances() {
        let g = power_law_community(300, 1200, 2.1, 6, 0.2, 2);
        let part = partitioned(&g, 4);
        let cluster = Cluster::new(&g, &part);
        let run = Engine::new(&cluster).run(&ShortestPaths { source: 0 }, 200);
        assert!(run.converged);
        let reference = traversal::bfs_distances(&g, 0);
        for v in g.vertices() {
            let expected = reference[v as usize].unwrap_or(u32::MAX);
            assert_eq!(run.states[v as usize], expected, "vertex {v}");
        }
    }

    #[test]
    fn pagerank_is_a_distribution_and_partition_invariant() {
        let g = power_law_community(200, 900, 2.1, 5, 0.2, 4);
        let pr = PageRank::default();
        let run_a = Engine::new(&Cluster::new(&g, &partitioned(&g, 1))).run(&pr, 300);
        let run_b = Engine::new(&Cluster::new(&g, &partitioned(&g, 6))).run(&pr, 300);
        assert!(run_a.converged && run_b.converged);
        let total: f64 = run_a.states.iter().map(|r| r.0).sum();
        // Isolated vertices keep (1-d)/n; covered ones sum with them to ~1.
        assert!((total - 1.0).abs() < 0.02, "rank mass {total}");
        for v in g.vertices() {
            assert!(
                (run_a.states[v as usize].0 - run_b.states[v as usize].0).abs() < 1e-6,
                "vertex {v} rank differs across partitionings"
            );
        }
    }

    #[test]
    fn pagerank_honors_configured_tolerance() {
        // Regression: `Rank`'s PartialEq used to hardcode a 1e-10 epsilon,
        // so any tolerance tighter than that was silently ignored — the
        // engine saw sub-1e-10 movement as "equal" and stopped early.
        // With convergence routed through `apply`'s tolerance clamp, a
        // tighter tolerance must keep iterating strictly longer.
        let g = power_law_community(120, 500, 2.1, 4, 0.2, 3);
        let part = partitioned(&g, 2);
        let run_at = |tolerance: f64| {
            let pr = PageRank {
                tolerance,
                ..PageRank::default()
            };
            Engine::new(&Cluster::new(&g, &part)).run(&pr, 2000)
        };
        let loose = run_at(1e-10);
        let tight = run_at(1e-13);
        assert!(loose.converged && tight.converged);
        assert!(
            tight.supersteps > loose.supersteps,
            "tolerance 1e-13 must outlast 1e-10: {} vs {} supersteps",
            tight.supersteps,
            loose.supersteps
        );
    }

    #[test]
    fn better_partitions_pay_fewer_messages() {
        let g = power_law_community(800, 4000, 2.1, 16, 0.2, 6);
        let tlp_part = partitioned(&g, 8);
        let random_part = tlp_baselines::RandomPartitioner::new(1)
            .partition(&g, 8)
            .unwrap();
        let pr = PageRank::default();
        let run_tlp = Engine::new(&Cluster::new(&g, &tlp_part)).run(&pr, 30);
        let run_rnd = Engine::new(&Cluster::new(&g, &random_part)).run(&pr, 30);
        assert!(
            run_tlp.total_messages < run_rnd.total_messages,
            "TLP {} messages vs Random {}",
            run_tlp.total_messages,
            run_rnd.total_messages
        );
        assert!(run_tlp.average_messages() > 0.0);
    }

    #[test]
    fn hub_degree_does_not_break_sssp_saturation() {
        // u32::MAX + 1 must saturate, not wrap, for unreached vertices.
        let g = tlp_graph::GraphBuilder::new()
            .reserve_vertices(4)
            .add_edges([(0, 1), (2, 3)])
            .build();
        let part = partitioned(&g, 2);
        let run = Engine::new(&Cluster::new(&g, &part)).run(&ShortestPaths { source: 0 }, 50);
        assert_eq!(run.states[2], u32::MAX);
        assert_eq!(run.states[3], u32::MAX);
        assert_eq!(run.states[1], 1);
    }
}
