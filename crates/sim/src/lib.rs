//! PowerGraph-style distributed execution simulator over edge partitions.
//!
//! The paper's motivation (§I) is that edge-partition quality decides the
//! communication bill of distributed graph engines. This crate closes the
//! loop: it takes any [`tlp_core::EdgePartition`], assembles the cluster
//! state a PowerGraph-like engine would build (local edges per machine,
//! vertex replicas, masters), runs gather–apply–scatter vertex programs
//! over it, and **meters every sync message**, so the replication factor's
//! cost becomes observable instead of theoretical.
//!
//! * [`Cluster`] — machines, local edge sets, replica/master placement.
//! * [`Engine`] — synchronous superstep executor with message accounting.
//! * [`VertexProgram`] — the gather/merge/apply interface.
//! * [`programs`] — PageRank, connected components, and single-source
//!   shortest paths, each verified against a single-machine reference.
//!
//! # Example
//!
//! ```
//! use tlp_core::{EdgePartitioner, TlpConfig, TwoStageLocalPartitioner};
//! use tlp_graph::generators::power_law_community;
//! use tlp_sim::{programs::ConnectedComponents, Cluster, Engine};
//!
//! let graph = power_law_community(500, 2_000, 2.1, 10, 0.2, 1);
//! let partition = TwoStageLocalPartitioner::new(TlpConfig::new().seed(1))
//!     .partition(&graph, 4)?;
//! let cluster = Cluster::new(&graph, &partition);
//! let run = Engine::new(&cluster).run(&ConnectedComponents, 100);
//! assert!(run.converged);
//! # Ok::<(), tlp_core::PartitionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod engine;
pub mod programs;
mod report;

pub use cluster::{Cluster, MachineId};
pub use engine::{Engine, VertexProgram};
pub use report::ExecutionReport;
