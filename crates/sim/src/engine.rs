//! The synchronous gather–merge–apply executor with message metering.

use crate::cluster::Cluster;
use crate::report::ExecutionReport;
use tlp_graph::VertexId;

/// A gather–merge–apply vertex program (PowerGraph's GAS model, restricted
/// to undirected gather-over-all-neighbors, which covers the classic
/// analytics workloads).
pub trait VertexProgram {
    /// Per-vertex state.
    type State: Clone + PartialEq;
    /// Gather accumulator.
    type Gather: Clone;

    /// Initial state of vertex `v` (degree available via the graph).
    fn init(&self, v: VertexId, graph: &tlp_graph::CsrGraph) -> Self::State;

    /// Contribution of neighbor `u` (with state `u_state`) to vertex `v`
    /// along one edge.
    fn gather(
        &self,
        v: VertexId,
        u: VertexId,
        u_state: &Self::State,
        graph: &tlp_graph::CsrGraph,
    ) -> Self::Gather;

    /// Combines two partial accumulators.
    fn merge(&self, a: Self::Gather, b: Self::Gather) -> Self::Gather;

    /// Produces the next state from the merged gather (or `None` when the
    /// vertex received no contributions this superstep).
    fn apply(
        &self,
        v: VertexId,
        state: &Self::State,
        gathered: Option<Self::Gather>,
        graph: &tlp_graph::CsrGraph,
    ) -> Self::State;
}

/// The superstep executor.
///
/// Per superstep, per machine: gather over local edges into per-replica
/// accumulators (communication-free), then replicas sync with masters
/// (metered), masters apply, and new states broadcast back to replicas
/// (metered). Execution stops when a superstep changes no state.
#[derive(Clone, Debug)]
pub struct Engine<'c, 'g> {
    cluster: &'c Cluster<'g>,
}

impl<'c, 'g> Engine<'c, 'g> {
    /// Creates an engine over a cluster.
    pub fn new(cluster: &'c Cluster<'g>) -> Self {
        Engine { cluster }
    }

    /// Runs `program` for at most `max_supersteps` synchronous supersteps.
    pub fn run<P: VertexProgram>(
        &self,
        program: &P,
        max_supersteps: usize,
    ) -> ExecutionReport<P::State> {
        let graph = self.cluster.graph();
        let n = graph.num_vertices();
        let p = self.cluster.num_machines();
        let mut states: Vec<P::State> = graph.vertices().map(|v| program.init(v, graph)).collect();

        let mut messages_per_superstep = Vec::new();
        let mut converged = false;

        for _ in 0..max_supersteps {
            // Gather phase: per machine, per local replica.
            // partial[k] holds Option<Gather> for each vertex replica on k.
            let mut partial: Vec<Vec<Option<P::Gather>>> = vec![Vec::new(); p];
            for (k, slot) in partial.iter_mut().enumerate() {
                slot.resize(n, None);
                for &e in self.cluster.local_edges(k as u32) {
                    let edge = graph.edge(e);
                    let (u, v) = edge.endpoints();
                    for (dst, src) in [(u, v), (v, u)] {
                        let g = program.gather(dst, src, &states[src as usize], graph);
                        let cell = &mut slot[dst as usize];
                        *cell = Some(match cell.take() {
                            None => g,
                            Some(acc) => program.merge(acc, g),
                        });
                    }
                }
            }

            // Sync + apply phase: masters merge replica accumulators.
            let mut messages = 0usize;
            let mut changed = false;
            let mut next: Vec<P::State> = states.clone();
            for v in graph.vertices() {
                let vi = v as usize;
                let replicas = self.cluster.replicas(v);
                if replicas.is_empty() {
                    continue;
                }
                let master = self.cluster.master(v).expect("non-isolated vertex");
                let mut acc: Option<P::Gather> = None;
                for &k in replicas {
                    if let Some(g) = partial[k as usize][vi].take() {
                        if k != master {
                            messages += 1; // replica -> master accumulator
                        }
                        acc = Some(match acc.take() {
                            None => g,
                            Some(a) => program.merge(a, g),
                        });
                    }
                }
                let new_state = program.apply(v, &states[vi], acc, graph);
                if new_state != states[vi] {
                    changed = true;
                    // master -> replicas broadcast of the changed state.
                    messages += replicas.len() - 1;
                }
                next[vi] = new_state;
            }

            states = next;
            messages_per_superstep.push(messages);
            if !changed {
                converged = true;
                break;
            }
        }

        ExecutionReport {
            supersteps: messages_per_superstep.len(),
            total_messages: messages_per_superstep.iter().sum(),
            messages_per_superstep,
            converged,
            states,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::ConnectedComponents;
    use tlp_core::EdgePartition;
    use tlp_graph::GraphBuilder;

    #[test]
    fn single_machine_run_sends_no_messages() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3)])
            .build();
        let part = EdgePartition::new(1, vec![0, 0, 0]).unwrap();
        let cluster = Cluster::new(&g, &part);
        let run = Engine::new(&cluster).run(&ConnectedComponents, 50);
        assert!(run.converged);
        assert_eq!(run.total_messages, 0, "no replicas -> no sync traffic");
    }

    #[test]
    fn split_run_pays_messages_but_computes_the_same() {
        let g = GraphBuilder::new()
            .add_edges([(0, 1), (1, 2), (2, 3)])
            .build();
        let whole = EdgePartition::new(1, vec![0, 0, 0]).unwrap();
        let split = EdgePartition::new(3, vec![0, 1, 2]).unwrap();
        let run_whole = Engine::new(&Cluster::new(&g, &whole)).run(&ConnectedComponents, 50);
        let run_split = Engine::new(&Cluster::new(&g, &split)).run(&ConnectedComponents, 50);
        assert_eq!(run_whole.states, run_split.states);
        assert!(run_split.total_messages > 0);
    }

    #[test]
    fn engine_stops_at_superstep_budget() {
        let g = GraphBuilder::new()
            .add_edges((0u32..50).map(|v| (v, v + 1)))
            .build();
        let part = EdgePartition::new(1, vec![0; 50]).unwrap();
        let cluster = Cluster::new(&g, &part);
        // A 51-vertex path needs ~50 supersteps to converge CC; cap at 3.
        let run = Engine::new(&cluster).run(&ConnectedComponents, 3);
        assert!(!run.converged);
        assert_eq!(run.supersteps, 3);
    }
}
