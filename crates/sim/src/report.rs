//! Execution reports: what a run cost and what it computed.

/// The result of one [`crate::Engine::run`].
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionReport<S> {
    /// Supersteps executed (including the final no-change one).
    pub supersteps: usize,
    /// Sync messages exchanged per superstep.
    pub messages_per_superstep: Vec<usize>,
    /// Total sync messages across the run.
    pub total_messages: usize,
    /// Whether a fixed point was reached within the superstep budget.
    pub converged: bool,
    /// Final per-vertex states.
    pub states: Vec<S>,
}

impl<S> ExecutionReport<S> {
    /// Average messages per superstep (0 for an empty run).
    pub fn average_messages(&self) -> f64 {
        if self.supersteps == 0 {
            0.0
        } else {
            self.total_messages as f64 / self.supersteps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_messages() {
        let r = ExecutionReport {
            supersteps: 2,
            messages_per_superstep: vec![10, 20],
            total_messages: 30,
            converged: true,
            states: vec![0u32; 4],
        };
        assert_eq!(r.average_messages(), 15.0);
        let empty: ExecutionReport<u32> = ExecutionReport {
            supersteps: 0,
            messages_per_superstep: vec![],
            total_messages: 0,
            converged: true,
            states: vec![],
        };
        assert_eq!(empty.average_messages(), 0.0);
    }
}
