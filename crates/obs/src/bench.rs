//! Shared writer for `BENCH_*.json` trajectory files.
//!
//! The workspace benches used to hand-roll their JSON emission; routing
//! them through this module gives every baseline file the same envelope
//! as profile traces — a leading `"schema"` field carrying
//! [`SCHEMA_VERSION`] — and a parse-back path for
//! asserting the emitted keys, while leaving each bench's own top-level
//! keys untouched.

use crate::event::SCHEMA_VERSION;
use serde::{Serialize, Value};
use std::io;
use std::path::Path;

/// Lowers `value` (which must serialize to a JSON object), prepends the
/// shared `"schema"` version field, and writes it pretty-printed to
/// `path` via a sibling temp file and rename so a crash never leaves a
/// half-written baseline.
pub fn write_bench_json<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    let mut lowered = value.to_value();
    let Value::Object(entries) = &mut lowered else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "bench baseline must serialize to a JSON object",
        ));
    };
    if !entries.iter().any(|(key, _)| key == "schema") {
        entries.insert(0, ("schema".to_string(), Value::UInt(SCHEMA_VERSION)));
    }
    let mut text = serde_json::to_string_pretty(&lowered)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    text.push('\n');
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, &text)?;
    std::fs::rename(&tmp, path)
}

/// Reads a baseline written by [`write_bench_json`] back into a
/// [`Value`] tree.
pub fn read_bench_json(path: &Path) -> io::Result<Value> {
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// The top-level keys of an object [`Value`], in file order — what bench
/// smoke tests assert against their expected schema.
pub fn top_level_keys(value: &Value) -> Vec<String> {
    match value {
        Value::Object(entries) => entries.iter().map(|(key, _)| key.clone()).collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sample;

    impl Serialize for Sample {
        fn to_value(&self) -> Value {
            Value::Object(vec![
                ("bench".into(), Value::String("sample".into())),
                ("seed".into(), Value::UInt(9)),
                ("speedup".into(), Value::Float(2.0)),
            ])
        }
    }

    #[test]
    fn writes_schema_first_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("tlp-obs-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sample.json");
        write_bench_json(&path, &Sample).unwrap();
        let value = read_bench_json(&path).unwrap();
        assert_eq!(
            top_level_keys(&value),
            vec!["schema", "bench", "seed", "speedup"]
        );
        let Value::Object(entries) = &value else {
            panic!("expected object")
        };
        assert_eq!(entries[0].1, Value::UInt(SCHEMA_VERSION));
        assert_eq!(entries[2].1, Value::UInt(9));
        assert_eq!(entries[3].1, Value::Float(2.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_non_object_baselines() {
        let path = std::env::temp_dir().join("BENCH_bad.json");
        assert!(write_bench_json(&path, &3u64).is_err());
    }
}
