//! Folds a JSONL profile trace into a phase summary table.
//!
//! ```text
//! tlp-obs-report TRACE.jsonl                # human table
//! tlp-obs-report TRACE.jsonl --canonical    # timing-stripped JSONL to stdout
//! tlp-obs-report TRACE.jsonl --percentiles  # p50/p95/p99 per span name
//! ```
//!
//! `--canonical` re-emits the trace with wall-clock durations removed —
//! the byte-diffable form golden-trace CI compares. A torn trailing line
//! (crash mid-append) is tolerated and noted; corruption anywhere else is
//! a hard error.

use std::path::PathBuf;
use std::process::ExitCode;
use tlp_obs::{canonical_lines, read_jsonl, render_percentiles, span_percentiles, ObsReport};

fn usage() -> ExitCode {
    eprintln!("usage: tlp-obs-report TRACE.jsonl [--canonical | --percentiles]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut canonical = false;
    let mut with_percentiles = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--canonical" => canonical = true,
            "--percentiles" => with_percentiles = true,
            "--help" | "-h" => return usage(),
            _ if path.is_none() => path = Some(PathBuf::from(arg)),
            _ => return usage(),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let trace = match read_jsonl(&path) {
        Ok(trace) => trace,
        Err(error) => {
            eprintln!("tlp-obs-report: {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if trace.truncated_tail {
        eprintln!(
            "tlp-obs-report: note: {} ends in a torn line (crash mid-append); it was dropped",
            path.display()
        );
    }
    if canonical {
        print!("{}", canonical_lines(&trace.events));
    } else if with_percentiles {
        print!("{}", render_percentiles(&span_percentiles(&trace.events)));
    } else {
        print!("{}", ObsReport::fold(&trace.events).render_table());
    }
    ExitCode::SUCCESS
}
