//! The structured event vocabulary and its JSONL wire form.
//!
//! Every observation is one [`Event`]: a span opening or closing, a
//! counter increment, or a gauge sample. Events encode to single JSON
//! lines with a fixed key order so that a trace from a fixed seed is
//! byte-for-byte reproducible; the only wall-clock-dependent field is
//! `dur_us` on span closes, which [`Event::canonical`] strips so golden
//! traces stay diffable across machines.
//!
//! Decoding ignores unknown object keys, so later schema versions may add
//! fields without breaking older readers — the `v` field records the
//! schema version an event was written under.

use serde::Value;

/// Version stamped into every encoded event as `"v"`. Bump only when a
/// field changes meaning; purely additive fields do not need a bump.
pub const SCHEMA_VERSION: u64 = 1;

/// A typed value attached to a span's open event.
#[derive(Clone, Debug, PartialEq)]
pub enum Field {
    /// Unsigned integer payload (ids, sizes, indices).
    U64(u64),
    /// Signed integer payload.
    I64(i64),
    /// Floating-point payload (ratios, scores).
    F64(f64),
    /// Short string payload (names, labels).
    Str(String),
}

impl Field {
    fn to_value(&self) -> Value {
        match self {
            Field::U64(n) => Value::UInt(*n),
            Field::I64(n) => Value::Int(*n),
            Field::F64(x) => Value::Float(*x),
            Field::Str(s) => Value::String(s.clone()),
        }
    }

    fn from_value(value: &Value) -> Option<Field> {
        match value {
            Value::UInt(n) => Some(Field::U64(*n)),
            Value::Int(n) => Some(Field::I64(*n)),
            Value::Float(x) => Some(Field::F64(*x)),
            Value::String(s) => Some(Field::Str(s.clone())),
            _ => None,
        }
    }
}

/// What happened — the event payload minus bookkeeping.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A phase began. `id` is unique within one scope (and within one
    /// trial after replay); `parent` nests spans into a tree.
    SpanOpen {
        /// Scope-unique span identifier.
        id: u64,
        /// Phase name, dot-separated (`"round"`, `"trial"`, `"run"`).
        name: String,
        /// Enclosing span's id, if any.
        parent: Option<u64>,
        /// Typed key/value annotations, in emission order.
        fields: Vec<(String, Field)>,
    },
    /// The phase with `id` ended. `dur_us` is the wall-clock duration in
    /// microseconds — the one non-deterministic field in the schema.
    SpanClose {
        /// Span identifier matching a prior [`EventKind::SpanOpen`].
        id: u64,
        /// Wall-clock duration; `None` in canonical form.
        dur_us: Option<u64>,
    },
    /// A monotonic counter advanced by `delta`.
    Counter {
        /// Counter name, dot-separated (`"round.admit"`).
        name: String,
        /// Amount added, never negative.
        delta: u64,
    },
    /// A point-in-time measurement; the report keeps the last value.
    Gauge {
        /// Gauge name, dot-separated.
        name: String,
        /// Sampled value.
        value: f64,
    },
}

/// One observation: a sequence number, an optional trial tag, and the
/// payload. `seq` is assigned by the recording scope and is contiguous
/// from 0 within one trace; `trial` is set when a parallel trial's local
/// events are replayed into the parent trace, making `(trial, span id)`
/// the global span identity.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Position in the trace, contiguous from 0.
    pub seq: u64,
    /// Trial index for events replayed out of a parallel trial.
    pub trial: Option<u32>,
    /// The payload.
    pub kind: EventKind,
}

/// Why a JSONL line failed to decode back into an [`Event`].
#[derive(Debug)]
pub struct DecodeError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

fn decode_error(message: impl Into<String>) -> DecodeError {
    DecodeError {
        message: message.into(),
    }
}

fn get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(entries: &[(String, Value)], key: &str) -> Result<u64, DecodeError> {
    match get(entries, key) {
        Some(Value::UInt(n)) => Ok(*n),
        Some(_) => Err(decode_error(format!(
            "field {key:?} is not an unsigned integer"
        ))),
        None => Err(decode_error(format!("missing field {key:?}"))),
    }
}

fn get_opt_u64(entries: &[(String, Value)], key: &str) -> Result<Option<u64>, DecodeError> {
    match get(entries, key) {
        Some(Value::UInt(n)) => Ok(Some(*n)),
        Some(Value::Null) | None => Ok(None),
        Some(_) => Err(decode_error(format!(
            "field {key:?} is not an unsigned integer"
        ))),
    }
}

fn get_str(entries: &[(String, Value)], key: &str) -> Result<String, DecodeError> {
    match get(entries, key) {
        Some(Value::String(s)) => Ok(s.clone()),
        Some(_) => Err(decode_error(format!("field {key:?} is not a string"))),
        None => Err(decode_error(format!("missing field {key:?}"))),
    }
}

fn get_f64(entries: &[(String, Value)], key: &str) -> Result<f64, DecodeError> {
    match get(entries, key) {
        Some(Value::Float(x)) => Ok(*x),
        Some(Value::UInt(n)) => Ok(*n as f64),
        Some(Value::Int(n)) => Ok(*n as f64),
        Some(_) => Err(decode_error(format!("field {key:?} is not a number"))),
        None => Err(decode_error(format!("missing field {key:?}"))),
    }
}

impl Event {
    /// Returns the event with its wall-clock duration stripped. Canonical
    /// events are fully determined by seed and configuration, so two
    /// canonical traces from the same run setup are byte-identical.
    pub fn canonical(&self) -> Event {
        let mut event = self.clone();
        if let EventKind::SpanClose { dur_us, .. } = &mut event.kind {
            *dur_us = None;
        }
        event
    }

    /// Encodes the event as one compact JSON line (no trailing newline),
    /// with a fixed key order so equal events encode to equal bytes.
    pub fn encode(&self) -> String {
        let mut entries: Vec<(String, Value)> = vec![
            ("v".into(), Value::UInt(SCHEMA_VERSION)),
            ("seq".into(), Value::UInt(self.seq)),
        ];
        if let Some(trial) = self.trial {
            entries.push(("trial".into(), Value::UInt(u64::from(trial))));
        }
        match &self.kind {
            EventKind::SpanOpen {
                id,
                name,
                parent,
                fields,
            } => {
                entries.push(("ev".into(), Value::String("open".into())));
                entries.push(("id".into(), Value::UInt(*id)));
                entries.push(("name".into(), Value::String(name.clone())));
                if let Some(parent) = parent {
                    entries.push(("parent".into(), Value::UInt(*parent)));
                }
                if !fields.is_empty() {
                    let rendered = fields
                        .iter()
                        .map(|(key, field)| (key.clone(), field.to_value()))
                        .collect();
                    entries.push(("fields".into(), Value::Object(rendered)));
                }
            }
            EventKind::SpanClose { id, dur_us } => {
                entries.push(("ev".into(), Value::String("close".into())));
                entries.push(("id".into(), Value::UInt(*id)));
                if let Some(dur_us) = dur_us {
                    entries.push(("dur_us".into(), Value::UInt(*dur_us)));
                }
            }
            EventKind::Counter { name, delta } => {
                entries.push(("ev".into(), Value::String("counter".into())));
                entries.push(("name".into(), Value::String(name.clone())));
                entries.push(("delta".into(), Value::UInt(*delta)));
            }
            EventKind::Gauge { name, value } => {
                entries.push(("ev".into(), Value::String("gauge".into())));
                entries.push(("name".into(), Value::String(name.clone())));
                entries.push(("value".into(), Value::Float(*value)));
            }
        }
        serde_json::to_string(&Value::Object(entries)).expect("the vendored JSON encoder is total")
    }

    /// Decodes one JSONL line. Unknown keys are ignored (additive schema
    /// tolerance); missing mandatory keys or type mismatches are errors.
    pub fn decode(line: &str) -> Result<Event, DecodeError> {
        let value = serde_json::from_str(line)
            .map_err(|e| decode_error(format!("not a JSON object: {e}")))?;
        let Value::Object(entries) = value else {
            return Err(decode_error("event line is not a JSON object"));
        };
        get_u64(&entries, "v")?;
        let seq = get_u64(&entries, "seq")?;
        let trial = match get_opt_u64(&entries, "trial")? {
            Some(n) => {
                Some(u32::try_from(n).map_err(|_| decode_error("trial index out of range"))?)
            }
            None => None,
        };
        let kind = match get_str(&entries, "ev")?.as_str() {
            "open" => {
                let fields = match get(&entries, "fields") {
                    Some(Value::Object(raw)) => raw
                        .iter()
                        .map(|(key, value)| {
                            Field::from_value(value)
                                .map(|field| (key.clone(), field))
                                .ok_or_else(|| {
                                    decode_error(format!("field {key:?} has unsupported type"))
                                })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    Some(_) => return Err(decode_error("\"fields\" is not an object")),
                    None => Vec::new(),
                };
                EventKind::SpanOpen {
                    id: get_u64(&entries, "id")?,
                    name: get_str(&entries, "name")?,
                    parent: get_opt_u64(&entries, "parent")?,
                    fields,
                }
            }
            "close" => EventKind::SpanClose {
                id: get_u64(&entries, "id")?,
                dur_us: get_opt_u64(&entries, "dur_us")?,
            },
            "counter" => EventKind::Counter {
                name: get_str(&entries, "name")?,
                delta: get_u64(&entries, "delta")?,
            },
            "gauge" => EventKind::Gauge {
                name: get_str(&entries, "name")?,
                value: get_f64(&entries, "value")?,
            },
            other => return Err(decode_error(format!("unknown event kind {other:?}"))),
        };
        Ok(Event { seq, trial, kind })
    }
}

/// Renders events in canonical form (timing stripped), one JSON line
/// each. Two traces from the same seed and configuration render to the
/// same string — this is the form golden-trace tests diff.
pub fn canonical_lines(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.canonical().encode());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_single_line_and_decodes_back() {
        let event = Event {
            seq: 3,
            trial: Some(1),
            kind: EventKind::SpanOpen {
                id: 7,
                name: "round".into(),
                parent: Some(2),
                fields: vec![("k".into(), Field::U64(4)), ("rf".into(), Field::F64(1.5))],
            },
        };
        let line = event.encode();
        assert!(!line.contains('\n'));
        assert_eq!(Event::decode(&line).unwrap(), event);
    }

    #[test]
    fn canonical_strips_duration_only() {
        let close = Event {
            seq: 9,
            trial: None,
            kind: EventKind::SpanClose {
                id: 7,
                dur_us: Some(1234),
            },
        };
        let canon = close.canonical();
        assert_eq!(
            canon.kind,
            EventKind::SpanClose {
                id: 7,
                dur_us: None
            }
        );
        assert_eq!(canon.seq, 9);
        assert_eq!(Event::decode(&canon.encode()).unwrap(), canon);
    }

    #[test]
    fn decode_ignores_unknown_keys() {
        let line =
            "{\"v\":1,\"seq\":0,\"ev\":\"counter\",\"name\":\"x\",\"delta\":2,\"note\":\"future\"}";
        let event = Event::decode(line).unwrap();
        assert_eq!(
            event.kind,
            EventKind::Counter {
                name: "x".into(),
                delta: 2
            }
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        for bad in [
            "",
            "not json",
            "[1,2]",
            "{\"seq\":0,\"ev\":\"counter\",\"name\":\"x\",\"delta\":2}",
            "{\"v\":1,\"seq\":0,\"ev\":\"mystery\"}",
            "{\"v\":1,\"seq\":0,\"ev\":\"counter\",\"name\":\"x\"}",
        ] {
            assert!(Event::decode(bad).is_err(), "accepted {bad:?}");
        }
    }
}
