//! Folding an event stream into a phase summary.
//!
//! [`ObsReport::fold`] aggregates a trace — span counts and total
//! durations per span name, counter totals, last gauge values — into the
//! structure surfaced on `RunArtifact` and rendered by `--obs-summary`
//! and the `tlp-obs-report` binary.
//!
//! [`read_jsonl`] reads a trace file back. A trace written through the
//! line-buffered `JsonlObserver` can legitimately end in a torn line if
//! the process died mid-append, so an undecodable FINAL line is reported
//! as `truncated_tail` rather than an error; an undecodable line anywhere
//! else is mid-file corruption and fails with a typed error.

use crate::event::{Event, EventKind, SCHEMA_VERSION};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// Aggregate for one span name.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// How many spans opened under this name.
    pub count: u64,
    /// Summed wall-clock duration (microseconds) over closed spans that
    /// carried timing; 0 for canonical traces.
    pub total_us: u64,
}

/// Total for one counter name.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterStat {
    /// Counter name.
    pub name: String,
    /// Sum of all deltas.
    pub total: u64,
}

/// Last sample for one gauge name.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeStat {
    /// Gauge name.
    pub name: String,
    /// Most recent value in stream order.
    pub value: f64,
}

/// A folded trace: the observability section of a run artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Schema version the fold understands.
    pub schema: u64,
    /// Number of events folded.
    pub events: u64,
    /// Per-name span aggregates, sorted by name.
    pub spans: Vec<SpanStat>,
    /// Per-name counter totals, sorted by name.
    pub counters: Vec<CounterStat>,
    /// Per-name last gauge values, sorted by name.
    pub gauges: Vec<GaugeStat>,
}

impl ObsReport {
    /// Aggregates an event stream. Span durations are attributed by
    /// `(trial, span id)` — the global span identity after replay.
    pub fn fold<'a>(events: impl IntoIterator<Item = &'a Event>) -> ObsReport {
        let mut span_names: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut open_spans: BTreeMap<(Option<u32>, u64), String> = BTreeMap::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
        let mut total = 0u64;
        for event in events {
            total += 1;
            match &event.kind {
                EventKind::SpanOpen { id, name, .. } => {
                    let entry = span_names.entry(name.clone()).or_insert((0, 0));
                    entry.0 += 1;
                    open_spans.insert((event.trial, *id), name.clone());
                }
                EventKind::SpanClose { id, dur_us } => {
                    if let Some(name) = open_spans.remove(&(event.trial, *id)) {
                        if let Some(dur) = dur_us {
                            if let Some(entry) = span_names.get_mut(&name) {
                                // Saturate: a report must never panic on a
                                // hostile or corrupted stream.
                                entry.1 = entry.1.saturating_add(*dur);
                            }
                        }
                    }
                }
                EventKind::Counter { name, delta } => {
                    let entry = counters.entry(name.clone()).or_insert(0);
                    *entry = entry.saturating_add(*delta);
                }
                EventKind::Gauge { name, value } => {
                    gauges.insert(name.clone(), *value);
                }
            }
        }
        ObsReport {
            schema: SCHEMA_VERSION,
            events: total,
            spans: span_names
                .into_iter()
                .map(|(name, (count, total_us))| SpanStat {
                    name,
                    count,
                    total_us,
                })
                .collect(),
            counters: counters
                .into_iter()
                .map(|(name, total)| CounterStat { name, total })
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(name, value)| GaugeStat { name, value })
                .collect(),
        }
    }

    /// Renders the report as an aligned human-readable table (the
    /// `--obs-summary` output).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "obs summary (schema v{}, {} events)\n",
            self.schema, self.events
        ));
        if !self.spans.is_empty() {
            out.push_str("  phase                        count    total ms\n");
            for span in &self.spans {
                out.push_str(&format!(
                    "  {:<28} {:>5} {:>11.3}\n",
                    span.name,
                    span.count,
                    span.total_us as f64 / 1000.0
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("  counter                              total\n");
            for counter in &self.counters {
                out.push_str(&format!("  {:<28} {:>13}\n", counter.name, counter.total));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("  gauge                                 last\n");
            for gauge in &self.gauges {
                out.push_str(&format!("  {:<28} {:>13.4}\n", gauge.name, gauge.value));
            }
        }
        out
    }
}

/// Why a trace file could not be read back.
#[derive(Debug)]
pub enum TraceReadError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A line before the last failed to decode — mid-file corruption,
    /// not a crash-truncated tail.
    Garbage {
        /// 1-based line number of the offending line.
        line: usize,
        /// Decoder's description of the failure.
        message: String,
    },
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceReadError::Garbage { line, message } => {
                write!(f, "trace line {line} is corrupt: {message}")
            }
        }
    }
}

impl std::error::Error for TraceReadError {}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> TraceReadError {
        TraceReadError::Io(e)
    }
}

/// A trace read back from disk.
#[derive(Debug)]
pub struct TraceFile {
    /// The decoded events, in file order.
    pub events: Vec<Event>,
    /// True when the final line was torn (crash mid-append) and dropped.
    pub truncated_tail: bool,
}

/// Reads a JSONL trace, tolerating a torn final line (see module docs).
pub fn read_jsonl(path: &Path) -> Result<TraceFile, TraceReadError> {
    decode_jsonl_lines(BufReader::new(std::fs::File::open(path)?).lines())
}

/// [`read_jsonl`] over in-memory text, for tests and piped input.
pub fn read_jsonl_str(text: &str) -> Result<TraceFile, TraceReadError> {
    decode_jsonl_lines(text.lines().map(|line| Ok(line.to_string())))
}

fn decode_jsonl_lines(
    lines: impl Iterator<Item = io::Result<String>>,
) -> Result<TraceFile, TraceReadError> {
    let mut events = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (index, line) in lines.enumerate() {
        let line = line?;
        if let Some((bad_line, message)) = pending.take() {
            // The undecodable line was not the last one: corruption.
            return Err(TraceReadError::Garbage {
                line: bad_line,
                message,
            });
        }
        if line.trim().is_empty() {
            continue;
        }
        match Event::decode(&line) {
            Ok(event) => events.push(event),
            Err(error) => pending = Some((index + 1, error.message)),
        }
    }
    Ok(TraceFile {
        truncated_tail: pending.is_some(),
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Field;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                seq: 0,
                trial: None,
                kind: EventKind::SpanOpen {
                    id: 1,
                    name: "run".into(),
                    parent: None,
                    fields: vec![("p".into(), Field::U64(4))],
                },
            },
            Event {
                seq: 1,
                trial: None,
                kind: EventKind::Counter {
                    name: "run.edges".into(),
                    delta: 10,
                },
            },
            Event {
                seq: 2,
                trial: None,
                kind: EventKind::Counter {
                    name: "run.edges".into(),
                    delta: 5,
                },
            },
            Event {
                seq: 3,
                trial: None,
                kind: EventKind::Gauge {
                    name: "rf".into(),
                    value: 1.5,
                },
            },
            Event {
                seq: 4,
                trial: None,
                kind: EventKind::SpanClose {
                    id: 1,
                    dur_us: Some(250),
                },
            },
        ]
    }

    #[test]
    fn fold_aggregates_spans_counters_gauges() {
        let report = ObsReport::fold(&sample_events());
        assert_eq!(report.events, 5);
        assert_eq!(
            report.spans,
            vec![SpanStat {
                name: "run".into(),
                count: 1,
                total_us: 250
            }]
        );
        assert_eq!(
            report.counters,
            vec![CounterStat {
                name: "run.edges".into(),
                total: 15
            }]
        );
        assert_eq!(
            report.gauges,
            vec![GaugeStat {
                name: "rf".into(),
                value: 1.5
            }]
        );
        let table = report.render_table();
        assert!(table.contains("run.edges"));
        assert!(table.contains("15"));
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let mut text = crate::event::canonical_lines(&sample_events());
        text.push_str("{\"v\":1,\"seq\":5,\"ev\":\"coun"); // torn mid-append
        let trace = read_jsonl_str(&text).unwrap();
        assert!(trace.truncated_tail);
        assert_eq!(trace.events.len(), 5);
    }

    #[test]
    fn midfile_garbage_is_a_typed_error() {
        let lines = crate::event::canonical_lines(&sample_events());
        let mut text = String::new();
        let rendered: Vec<&str> = lines.lines().collect();
        text.push_str(rendered[0]);
        text.push_str("\nnot json at all\n");
        text.push_str(rendered[1]);
        text.push('\n');
        match read_jsonl_str(&text) {
            Err(TraceReadError::Garbage { line: 2, .. }) => {}
            other => panic!("expected garbage error on line 2, got {other:?}"),
        }
    }
}
