//! Latency percentile folding, shared by `tlp-obs-report --percentiles`
//! and the serve load generator's latency reporting.
//!
//! Percentiles use the nearest-rank method on sorted samples: `p(q)` is
//! the value at 1-based rank `ceil(q/100 · n)`. Nearest-rank always
//! returns an observed sample (no interpolation), which keeps reports
//! exact, deterministic, and meaningful even for tiny sample counts.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::event::{Event, EventKind};

/// Nearest-rank percentile summary of a duration sample set, in
/// microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct Percentiles {
    /// Number of samples folded.
    pub count: u64,
    /// Median (50th percentile).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

/// Folds raw duration samples (microseconds) into [`Percentiles`].
/// Returns `None` for an empty sample set. Sorts in place.
pub fn percentiles(samples: &mut [u64]) -> Option<Percentiles> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_unstable();
    let rank = |q: f64| -> u64 {
        let n = samples.len() as f64;
        let idx = (q / 100.0 * n).ceil() as usize;
        samples[idx.clamp(1, samples.len()) - 1]
    };
    Some(Percentiles {
        count: samples.len() as u64,
        p50: rank(50.0),
        p95: rank(95.0),
        p99: rank(99.0),
        max: samples[samples.len() - 1],
    })
}

/// Folds per-span-name duration percentiles out of an event stream.
/// Durations are attributed by `(trial, span id)`, the global span
/// identity after replay; spans without a recorded duration are skipped.
pub fn span_percentiles<'a>(
    events: impl IntoIterator<Item = &'a Event>,
) -> BTreeMap<String, Percentiles> {
    let mut open: BTreeMap<(Option<u32>, u64), String> = BTreeMap::new();
    let mut samples: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for event in events {
        match &event.kind {
            EventKind::SpanOpen { id, name, .. } => {
                open.insert((event.trial, *id), name.clone());
            }
            EventKind::SpanClose { id, dur_us } => {
                if let Some(name) = open.remove(&(event.trial, *id)) {
                    if let Some(dur) = dur_us {
                        samples.entry(name).or_default().push(*dur);
                    }
                }
            }
            _ => {}
        }
    }
    samples
        .into_iter()
        .filter_map(|(name, mut durs)| percentiles(&mut durs).map(|p| (name, p)))
        .collect()
}

/// Renders a fixed-width percentile table, one row per span name.
pub fn render_percentiles(table: &BTreeMap<String, Percentiles>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
        "span", "count", "p50_us", "p95_us", "p99_us", "max_us"
    ));
    for (name, p) in table {
        out.push_str(&format!(
            "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            name, p.count, p.p50, p.p95, p.p99, p.max
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_on_known_samples() {
        let mut samples: Vec<u64> = (1..=100).collect();
        let p = percentiles(&mut samples).expect("non-empty");
        assert_eq!(p.count, 100);
        assert_eq!(p.p50, 50);
        assert_eq!(p.p95, 95);
        assert_eq!(p.p99, 99);
        assert_eq!(p.max, 100);
    }

    #[test]
    fn tiny_sample_sets_stay_in_range() {
        let mut one = vec![7];
        let p = percentiles(&mut one).expect("non-empty");
        assert_eq!((p.p50, p.p95, p.p99, p.max), (7, 7, 7, 7));
        assert!(percentiles(&mut []).is_none());
    }

    #[test]
    fn span_percentiles_fold_a_synthetic_trace() {
        let mut events = Vec::new();
        let mut seq = 0u64;
        // Ten "op" spans with durations 10, 20, ..., 100 and one
        // duration-less "setup" span that must be skipped.
        events.push(Event {
            seq,
            trial: None,
            kind: EventKind::SpanOpen {
                id: 999,
                name: "setup".into(),
                parent: None,
                fields: vec![],
            },
        });
        seq += 1;
        events.push(Event {
            seq,
            trial: None,
            kind: EventKind::SpanClose {
                id: 999,
                dur_us: None,
            },
        });
        for i in 1..=10u64 {
            seq += 1;
            events.push(Event {
                seq,
                trial: None,
                kind: EventKind::SpanOpen {
                    id: i,
                    name: "op".into(),
                    parent: None,
                    fields: vec![],
                },
            });
            seq += 1;
            events.push(Event {
                seq,
                trial: None,
                kind: EventKind::SpanClose {
                    id: i,
                    dur_us: Some(i * 10),
                },
            });
        }
        let table = span_percentiles(&events);
        assert_eq!(table.len(), 1, "duration-less span skipped");
        let op = &table["op"];
        assert_eq!(op.count, 10);
        assert_eq!(op.p50, 50);
        assert_eq!(op.p95, 100);
        assert_eq!(op.p99, 100);
        assert_eq!(op.max, 100);
        let rendered = render_percentiles(&table);
        assert!(rendered.contains("op"));
        assert!(rendered.contains("p99_us"));
    }
}
