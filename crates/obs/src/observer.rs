//! Observers and the scoped thread-local dispatch layer.
//!
//! Instrumented code never holds an observer handle: it calls the free
//! functions [`counter`], [`gauge`], and [`span`], which consult a
//! thread-local scope. With no scope installed (the [`NullObserver`]
//! default) every call is a single thread-local flag read and an early
//! return, so instrumentation stays in hot paths unconditionally.
//!
//! [`with_observer`] installs an observer for the duration of a closure
//! and hands it back afterwards. Scopes nest (the previous scope is
//! restored on exit, including on panic), and each scope owns its own
//! sequence counter, span-id allocator, and span stack — so a trace's
//! `seq` values are contiguous from 0 regardless of what was recorded
//! before the scope opened.
//!
//! Parallel trials record into a local scope on their worker thread and
//! the parent [`replay`]s the buffered events in trial-index order,
//! tagging them with the trial index. That makes the merged stream
//! independent of thread count and scheduling.

use crate::event::{Event, EventKind, Field};
use std::cell::{Cell, RefCell};
use std::fs::File;
use std::io::{self, LineWriter, Write};
use std::path::Path;
use std::rc::Rc;
use std::time::Instant;

/// Consumes a stream of [`Event`]s.
pub trait Observer {
    /// Records one event. Must not emit events itself (the scope is
    /// borrowed while this runs).
    fn record(&mut self, event: Event);
}

/// Discards every event — the implicit default when no scope is
/// installed. Exists as a value for call sites that want to be explicit.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn record(&mut self, _event: Event) {}
}

/// Buffers events in memory, for tests and for per-trial capture.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    /// Everything recorded so far, in order.
    pub events: Vec<Event>,
}

impl Observer for RecordingObserver {
    fn record(&mut self, event: Event) {
        self.events.push(event);
    }
}

/// Writes events as JSON lines to a file, flushing at every newline so a
/// crash mid-run loses at most the line being written. The report folder
/// tolerates that torn trailing line, so a partial trace stays readable.
#[derive(Debug)]
pub struct JsonlObserver {
    out: LineWriter<File>,
    error: Option<io::Error>,
}

impl JsonlObserver {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: &Path) -> io::Result<JsonlObserver> {
        Ok(JsonlObserver {
            out: LineWriter::new(File::create(path)?),
            error: None,
        })
    }

    /// Flushes and reports the first write error, if any occurred.
    /// [`Observer::record`] is infallible, so errors are deferred here.
    pub fn finish(mut self) -> io::Result<()> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        self.out.flush()
    }
}

impl Observer for JsonlObserver {
    fn record(&mut self, event: Event) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.encode();
        line.push('\n');
        if let Err(error) = self.out.write_all(line.as_bytes()) {
            self.error = Some(error);
        }
    }
}

struct ScopeState {
    sink: Rc<RefCell<dyn Observer>>,
    seq: u64,
    next_span: u64,
    stack: Vec<u64>,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SCOPE: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
}

/// True when an observer scope is installed on this thread. The hot-path
/// emitters check this first; instrumentation with no observer attached
/// costs one thread-local read.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(Cell::get)
}

struct ScopeGuard {
    previous: Option<ScopeState>,
}

impl ScopeGuard {
    fn install(sink: Rc<RefCell<dyn Observer>>) -> ScopeGuard {
        let fresh = ScopeState {
            sink,
            seq: 0,
            next_span: 1,
            stack: Vec::new(),
        };
        let previous = SCOPE.with(|scope| scope.borrow_mut().replace(fresh));
        ENABLED.with(|enabled| enabled.set(true));
        ScopeGuard { previous }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        ENABLED.with(|enabled| enabled.set(previous.is_some()));
        SCOPE.with(|scope| *scope.borrow_mut() = previous);
    }
}

/// Runs `f` with `observer` installed as this thread's event sink and
/// returns the closure's result together with the observer (holding
/// whatever it recorded). The previous scope, if any, is restored on
/// exit — including when `f` panics (the observer's events are lost in
/// that case, which is how poisoned parallel trials stay excluded).
pub fn with_observer<S: Observer + 'static, T>(observer: S, f: impl FnOnce() -> T) -> (T, S) {
    let cell: Rc<RefCell<S>> = Rc::new(RefCell::new(observer));
    let sink: Rc<RefCell<dyn Observer>> = cell.clone();
    let guard = ScopeGuard::install(sink);
    let result = f();
    drop(guard);
    let observer = match Rc::try_unwrap(cell) {
        Ok(cell) => cell.into_inner(),
        Err(_) => unreachable!("scope releases its observer handle on drop"),
    };
    (result, observer)
}

/// [`with_observer`] specialized to a [`RecordingObserver`]; returns the
/// closure's result and the recorded events.
pub fn with_recording<T>(f: impl FnOnce() -> T) -> (T, Vec<Event>) {
    let (result, recorder) = with_observer(RecordingObserver::default(), f);
    (result, recorder.events)
}

fn record_kind(kind: EventKind) {
    SCOPE.with(|scope| {
        if let Some(state) = scope.borrow_mut().as_mut() {
            let event = Event {
                seq: state.seq,
                trial: None,
                kind,
            };
            state.seq += 1;
            state.sink.borrow_mut().record(event);
        }
    });
}

/// Advances the named counter by `delta`. No-op without a scope, and
/// zero deltas are suppressed so quiet rounds don't bloat traces.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !is_enabled() || delta == 0 {
        return;
    }
    record_kind(EventKind::Counter {
        name: name.to_string(),
        delta,
    });
}

/// Records a point-in-time measurement. No-op without a scope.
#[inline]
pub fn gauge(name: &str, value: f64) {
    if !is_enabled() {
        return;
    }
    record_kind(EventKind::Gauge {
        name: name.to_string(),
        value,
    });
}

/// Opens a span; it closes when the returned guard drops.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            id: None,
            start: None,
        };
    }
    open_span(name, Vec::new())
}

/// Opens a span with typed annotation fields.
#[inline]
pub fn span_with(name: &str, fields: Vec<(String, Field)>) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            id: None,
            start: None,
        };
    }
    open_span(name, fields)
}

fn open_span(name: &str, fields: Vec<(String, Field)>) -> SpanGuard {
    SCOPE.with(|scope| {
        let mut borrow = scope.borrow_mut();
        let Some(state) = borrow.as_mut() else {
            return SpanGuard {
                id: None,
                start: None,
            };
        };
        let id = state.next_span;
        state.next_span += 1;
        let parent = state.stack.last().copied();
        let event = Event {
            seq: state.seq,
            trial: None,
            kind: EventKind::SpanOpen {
                id,
                name: name.to_string(),
                parent,
                fields,
            },
        };
        state.seq += 1;
        state.stack.push(id);
        state.sink.borrow_mut().record(event);
        SpanGuard {
            id: Some(id),
            start: Some(Instant::now()),
        }
    })
}

/// RAII handle for an open span: records the matching close (with
/// wall-clock duration) when dropped.
#[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
pub struct SpanGuard {
    id: Option<u64>,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        let dur_us = self
            .start
            .map(|start| u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
        SCOPE.with(|scope| {
            if let Some(state) = scope.borrow_mut().as_mut() {
                // Pop down to this span; tolerates out-of-order guard drops.
                while let Some(top) = state.stack.pop() {
                    if top == id {
                        break;
                    }
                }
                let event = Event {
                    seq: state.seq,
                    trial: None,
                    kind: EventKind::SpanClose { id, dur_us },
                };
                state.seq += 1;
                state.sink.borrow_mut().record(event);
            }
        });
    }
}

/// Re-records events captured in another scope (typically a parallel
/// trial's worker-local recording) into the current scope. Each event is
/// re-sequenced and, if untagged, tagged with `trial` — so replaying the
/// per-trial buffers in trial-index order yields one deterministic merged
/// stream no matter how many threads ran the trials.
pub fn replay(events: Vec<Event>, trial: Option<u32>) {
    if !is_enabled() {
        return;
    }
    SCOPE.with(|scope| {
        if let Some(state) = scope.borrow_mut().as_mut() {
            for mut event in events {
                event.seq = state.seq;
                state.seq += 1;
                if event.trial.is_none() {
                    event.trial = trial;
                }
                state.sink.borrow_mut().record(event);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::canonical_lines;

    #[test]
    fn no_scope_means_disabled_and_silent() {
        assert!(!is_enabled());
        counter("x", 1);
        gauge("y", 2.0);
        let _span = span("z");
    }

    #[test]
    fn records_nested_spans_counters_and_gauges() {
        let ((), events) = with_recording(|| {
            let _run = span("run");
            {
                let _round = span_with("round", vec![("k".into(), Field::U64(0))]);
                counter("admit", 3);
                counter("admit", 0); // suppressed
            }
            gauge("rf", 1.5);
        });
        let kinds: Vec<&EventKind> = events.iter().map(|e| &e.kind).collect();
        assert_eq!(events.len(), 6);
        assert!(matches!(
            kinds[0],
            EventKind::SpanOpen {
                id: 1,
                parent: None,
                ..
            }
        ));
        assert!(matches!(
            kinds[1],
            EventKind::SpanOpen {
                id: 2,
                parent: Some(1),
                ..
            }
        ));
        assert!(matches!(kinds[2], EventKind::Counter { delta: 3, .. }));
        assert!(matches!(
            kinds[3],
            EventKind::SpanClose {
                id: 2,
                dur_us: Some(_)
            }
        ));
        assert!(matches!(kinds[4], EventKind::Gauge { .. }));
        assert!(matches!(
            kinds[5],
            EventKind::SpanClose {
                id: 1,
                dur_us: Some(_)
            }
        ));
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let ((), outer) = with_recording(|| {
            counter("outer", 1);
            let ((), inner) = with_recording(|| counter("inner", 1));
            assert_eq!(inner.len(), 1);
            assert_eq!(inner[0].seq, 0, "inner scope re-sequences from 0");
            counter("outer", 2);
        });
        assert_eq!(outer.len(), 2);
        assert!(matches!(
            &outer[1].kind,
            EventKind::Counter { delta: 2, .. }
        ));
        assert!(!is_enabled());
    }

    #[test]
    fn replay_tags_and_resequences() {
        let ((), merged) = with_recording(|| {
            let buffers: Vec<Vec<Event>> = (0..2)
                .map(|i| {
                    let ((), events) = with_recording(|| counter("trial.work", i + 1));
                    events
                })
                .collect();
            for (i, events) in buffers.into_iter().enumerate() {
                replay(events, Some(i as u32));
            }
        });
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].trial, Some(0));
        assert_eq!(merged[1].trial, Some(1));
        assert_eq!(merged[0].seq, 0);
        assert_eq!(merged[1].seq, 1);
    }

    #[test]
    fn same_work_records_identical_canonical_streams() {
        let run = || {
            with_recording(|| {
                let _run = span("run");
                counter("edges", 10);
                gauge("rf", 1.25);
            })
            .1
        };
        assert_eq!(canonical_lines(&run()), canonical_lines(&run()));
    }

    #[test]
    fn jsonl_observer_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join(format!("tlp-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let ((), observer) = with_observer(JsonlObserver::create(&path).unwrap(), || {
            counter("a", 1);
            gauge("b", 2.5);
        });
        observer.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Event::decode(line).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
