//! Structured observability for the TLP workspace.
//!
//! The pipeline's instrumentation speaks one small vocabulary — spans
//! (phases), counters (monotonic totals), gauges (point samples) — and
//! this crate supplies the three layers around it:
//!
//! * [`event`]: the [`Event`] type and its JSONL wire form, versioned by
//!   [`SCHEMA_VERSION`], with a [`canonical`](Event::canonical) form that
//!   strips wall-clock timing so fixed-seed traces are byte-diffable.
//! * [`observer`]: the [`Observer`] trait ([`NullObserver`],
//!   [`RecordingObserver`], [`JsonlObserver`]) and the scoped
//!   thread-local dispatch — [`with_observer`] installs a sink for a
//!   closure, and instrumented code emits through the free functions
//!   [`span`], [`counter`], and [`gauge`] at near-zero cost when nothing
//!   is installed.
//! * [`report`]: [`ObsReport`] folds a trace into per-phase aggregates
//!   (the `--obs-summary` table and the `RunArtifact` obs section), and
//!   [`read_jsonl`] reads traces back tolerating a crash-torn tail.
//!
//! The determinism contract instrumented code must keep: event content
//! other than `dur_us` may depend only on the algorithm's own inputs
//! (graph, seed, configuration) — never on wall-clock, thread scheduling,
//! or memory addresses. Parallel sections record per-unit and
//! [`replay`] in a fixed order. Under that contract, a canonical trace is
//! a pure function of the run setup, which is what the golden-trace tests
//! and the `--threads` invariance suite pin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod event;
pub mod observer;
pub mod percentile;
pub mod report;

pub use event::{canonical_lines, DecodeError, Event, EventKind, Field, SCHEMA_VERSION};
pub use observer::{
    counter, gauge, is_enabled, replay, span, span_with, with_observer, with_recording,
    JsonlObserver, NullObserver, Observer, RecordingObserver, SpanGuard,
};
pub use percentile::{percentiles, render_percentiles, span_percentiles, Percentiles};
pub use report::{
    read_jsonl, read_jsonl_str, CounterStat, GaugeStat, ObsReport, SpanStat, TraceFile,
    TraceReadError,
};
