//! Property tests for the JSONL wire format: arbitrary span/counter/gauge
//! interleavings survive encode → decode losslessly, and the report
//! folder never panics on a trace with a torn trailing line (the shape a
//! crashed `--profile` run leaves behind).

use proptest::prelude::*;
use proptest::prop::collection::vec;
use tlp_obs::{read_jsonl_str, Event, EventKind, Field, ObsReport};

/// Any field the instrumentation can attach. Non-negative integers
/// normalize to `U64` on the wire (JSON has one integer space), so the
/// `I64` arm stays strictly negative to keep the round trip exact.
fn field_strategy() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<u64>().prop_map(Field::U64),
        (i64::MIN..0).prop_map(Field::I64),
        (-1.0e12f64..1.0e12).prop_map(Field::F64),
        prop_oneof![Just(2.0f64), Just(-0.0), Just(1.0e-9)].prop_map(Field::F64),
        any::<String>().prop_map(Field::Str),
    ]
}

fn name_strategy() -> impl Strategy<Value = String> {
    // Exercise escaping: quotes, backslashes, control chars, unicode.
    prop_oneof![
        (0u64..1000).prop_map(|n| format!("span.{n}")),
        any::<String>().prop_filter("bounded", |s| s.len() <= 24),
    ]
}

fn kind_strategy() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        (
            1u64..1000,
            name_strategy(),
            proptest::option::of(1u64..1000),
            vec((name_strategy(), field_strategy()), 0..4),
        )
            .prop_map(|(id, name, parent, fields)| EventKind::SpanOpen {
                id,
                name,
                parent,
                fields,
            }),
        (1u64..1000, proptest::option::of(any::<u64>()))
            .prop_map(|(id, dur_us)| EventKind::SpanClose { id, dur_us }),
        (name_strategy(), any::<u64>())
            .prop_map(|(name, delta)| EventKind::Counter { name, delta }),
        (name_strategy(), -1.0e12f64..1.0e12)
            .prop_map(|(name, value)| EventKind::Gauge { name, value }),
    ]
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (
        any::<u64>(),
        proptest::option::of(any::<u32>()),
        kind_strategy(),
    )
        .prop_map(|(seq, trial, kind)| Event { seq, trial, kind })
}

/// Longest prefix of `text` that is at most `len` bytes and ends on a
/// char boundary.
fn floor_char_boundary(text: &str, mut len: usize) -> usize {
    len = len.min(text.len());
    while len > 0 && !text.is_char_boundary(len) {
        len -= 1;
    }
    len
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interleavings_round_trip_through_jsonl(events in vec(event_strategy(), 1..24)) {
        let mut text = String::new();
        for event in &events {
            text.push_str(&event.encode());
            text.push('\n');
        }
        // Per-line decode is exact...
        for (line, original) in text.lines().zip(&events) {
            let decoded = Event::decode(line).expect("encoded line decodes");
            prop_assert_eq!(&decoded, original);
        }
        // ...and so is the whole-stream read, with a clean tail.
        let trace = read_jsonl_str(&text).expect("clean stream reads");
        prop_assert!(!trace.truncated_tail);
        prop_assert_eq!(&trace.events, &events);
        // Folding arbitrary (even unbalanced) streams must never panic.
        let report = ObsReport::fold(&trace.events);
        prop_assert_eq!(report.events, events.len() as u64);
        let _ = report.render_table();
    }

    #[test]
    fn torn_trailing_lines_are_tolerated(
        events in vec(event_strategy(), 1..16),
        torn_bytes in 1usize..120,
    ) {
        let mut text = String::new();
        for event in &events {
            text.push_str(&event.encode());
            text.push('\n');
        }
        // Tear the final line mid-write, the way a crash would.
        let body = text.trim_end_matches('\n');
        let last_start = body.rfind('\n').map_or(0, |i| i + 1);
        let last_line = &body[last_start..];
        let keep = floor_char_boundary(last_line, torn_bytes % last_line.len().max(1));
        let torn = format!("{}{}", &body[..last_start], &last_line[..keep]);

        let trace = read_jsonl_str(&torn).expect("a torn tail is not garbage");
        if keep == 0 {
            // The tear removed the whole line: the remaining stream is clean.
            prop_assert!(!trace.truncated_tail);
            prop_assert_eq!(&trace.events, &events[..events.len() - 1]);
        } else {
            prop_assert!(trace.truncated_tail, "strict prefix decoded as complete");
            prop_assert_eq!(&trace.events, &events[..events.len() - 1]);
        }
        // The folder and renderer shrug off the partial stream.
        let _ = ObsReport::fold(&trace.events).render_table();
    }
}
