//! Offline stand-in for the `bytemuck` crate (slice-cast subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of `bytemuck` it actually uses: a [`Pod`] marker
//! trait for plain-old-data primitives and alignment/size-checked
//! reinterpreting slice casts ([`cast_slice`], [`cast_slice_mut`],
//! [`try_cast_slice`], [`try_cast_slice_mut`]).
//!
//! This is the **only** crate in the workspace allowed to contain `unsafe`;
//! every other crate keeps `#![forbid(unsafe_code)]` and funnels zero-copy
//! reinterpretation through these functions. Soundness rests on the [`Pod`]
//! contract (any bit pattern is a valid value, no padding) plus the runtime
//! alignment and length checks below, which mirror upstream `bytemuck`
//! semantics: a cast that would misalign or split a target element fails
//! instead of transmuting.

#![warn(missing_docs)]

use core::mem::{align_of, size_of};

/// Marker for plain-old-data types: any bit pattern is a valid value and the
/// representation has no padding bytes.
///
/// # Safety
///
/// Implementors must guarantee both properties above; the slice casts in
/// this crate rely on them to reinterpret raw memory.
pub unsafe trait Pod: Copy + 'static {}

// Primitive words only — no user-defined structs, whose layout Rust does not
// guarantee without `repr(C)`.
unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for i64 {}

/// Why a checked cast was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PodCastError {
    /// The source pointer is not aligned for the target element type.
    TargetAlignmentGreaterAndInputNotAligned,
    /// The source byte length is not a multiple of the target element size.
    OutputSliceWouldHaveSlop,
}

impl core::fmt::Display for PodCastError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PodCastError::TargetAlignmentGreaterAndInputNotAligned => {
                write!(f, "input slice is not aligned for the target type")
            }
            PodCastError::OutputSliceWouldHaveSlop => {
                write!(f, "input length is not a multiple of the target element size")
            }
        }
    }
}

impl std::error::Error for PodCastError {}

fn check<A: Pod, B: Pod>(ptr: *const A, len: usize) -> Result<usize, PodCastError> {
    let bytes = len
        .checked_mul(size_of::<A>())
        .expect("slice byte length overflows usize");
    if (ptr as usize) % align_of::<B>() != 0 {
        return Err(PodCastError::TargetAlignmentGreaterAndInputNotAligned);
    }
    if size_of::<B>() == 0 || bytes % size_of::<B>() != 0 {
        return Err(PodCastError::OutputSliceWouldHaveSlop);
    }
    Ok(bytes / size_of::<B>())
}

/// Reinterprets `&[A]` as `&[B]`, or reports why it cannot.
pub fn try_cast_slice<A: Pod, B: Pod>(a: &[A]) -> Result<&[B], PodCastError> {
    let out_len = check::<A, B>(a.as_ptr(), a.len())?;
    // SAFETY: both types are Pod (no padding, any bits valid), the pointer is
    // aligned for B, and the byte length divides evenly into B elements. The
    // lifetime and borrow are inherited from `a`.
    Ok(unsafe { core::slice::from_raw_parts(a.as_ptr() as *const B, out_len) })
}

/// Reinterprets `&mut [A]` as `&mut [B]`, or reports why it cannot.
pub fn try_cast_slice_mut<A: Pod, B: Pod>(a: &mut [A]) -> Result<&mut [B], PodCastError> {
    let out_len = check::<A, B>(a.as_ptr(), a.len())?;
    // SAFETY: as in `try_cast_slice`, plus exclusivity inherited from `a`.
    Ok(unsafe { core::slice::from_raw_parts_mut(a.as_mut_ptr() as *mut B, out_len) })
}

/// Reinterprets `&[A]` as `&[B]`.
///
/// # Panics
///
/// Panics if the slice is misaligned for `B` or its byte length is not a
/// multiple of `size_of::<B>()`.
pub fn cast_slice<A: Pod, B: Pod>(a: &[A]) -> &[B] {
    try_cast_slice(a).expect("cast_slice")
}

/// Reinterprets `&mut [A]` as `&mut [B]`.
///
/// # Panics
///
/// Panics if the slice is misaligned for `B` or its byte length is not a
/// multiple of `size_of::<B>()`.
pub fn cast_slice_mut<A: Pod, B: Pod>(a: &mut [A]) -> &mut [B] {
    try_cast_slice_mut(a).expect("cast_slice_mut")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_to_u8_and_back() {
        let words = vec![0x0102_0304_0506_0708u64, 0x1112_1314_1516_1718u64];
        let bytes: &[u8] = cast_slice(&words);
        assert_eq!(bytes.len(), 16);
        let back: &[u64] = cast_slice(bytes);
        assert_eq!(back, &words[..]);
    }

    #[test]
    fn u64_to_u32_halves() {
        let words = vec![u64::from(u32::MAX)];
        let halves: &[u32] = cast_slice(&words);
        assert_eq!(halves.len(), 2);
        assert!(halves.contains(&u32::MAX) && halves.contains(&0));
    }

    #[test]
    fn little_endian_byte_order_observed() {
        // The store format is explicitly little-endian; the cast path is only
        // correct on little-endian hosts, which this asserts at test time.
        let words = vec![1u64];
        let bytes: &[u8] = cast_slice(&words);
        assert_eq!(bytes[0], 1, "this workspace assumes a little-endian host");
    }

    #[test]
    fn misaligned_cast_refused() {
        let bytes = vec![0u8; 17];
        // Odd length can never form whole u64 elements.
        assert_eq!(
            try_cast_slice::<u8, u64>(&bytes).unwrap_err(),
            PodCastError::OutputSliceWouldHaveSlop
        );
        // An offset view is (almost always) misaligned; accept either error
        // since a 1-offset pointer may coincidentally be 8-aligned only if
        // the allocator misbehaves, which it cannot for Vec<u8> of align 1.
        let tail = &bytes[1..];
        assert!(try_cast_slice::<u8, u64>(tail).is_err());
    }

    #[test]
    fn mutable_cast_writes_through() {
        let mut words = vec![0u64; 2];
        {
            let bytes: &mut [u8] = cast_slice_mut(&mut words);
            bytes[0] = 7;
            bytes[8] = 9;
        }
        assert_eq!(words, vec![7, 9]);
    }

    #[test]
    fn empty_slice_casts() {
        let empty: &[u64] = &[];
        let bytes: &[u8] = cast_slice(empty);
        assert!(bytes.is_empty());
    }
}
