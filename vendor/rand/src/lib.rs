//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`], implemented as xoshiro256++
//! seeded through SplitMix64), the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! Determinism contract: for a fixed seed, every method produces the same
//! sequence on every platform and in every build profile. All of the
//! workspace's golden outputs and reproducibility tests rest on this, so
//! **any change to the value streams here is a breaking change**.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it to a full seed with
    /// SplitMix64 (matching rand 0.8's documented approach).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: mixes `state` and advances it. Used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening-multiply bounded sampling (Lemire's method without the
/// rejection step; the bias is below 2^-64 per draw and irrelevant for
/// heuristic seeding, while keeping the draw branch-free and deterministic).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of one word.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_from_u64 {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_from_u64!(u8, u16, i8, i16, i32, i64, isize);

/// User-facing extension methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike the upstream `StdRng` (which explicitly reserves the right to
    /// change algorithms between versions), this vendored one is frozen —
    /// golden partition outputs depend on its exact stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Snapshots the full internal xoshiro256++ state, for checkpointing
        /// a generator mid-stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot; the
        /// restored generator continues the exact value stream the
        /// snapshotted one would have produced.
        ///
        /// The all-zero state (a xoshiro fixed point, never produced by a
        /// real generator) is remapped the same way [`SeedableRng::from_seed`]
        /// remaps it.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; remap it.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::{Rng, RngCore};

    /// Slice shuffling and random element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn fixed_seed_is_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    // Frozen stream: these exact values are load-bearing for the golden
    // partition outputs checked in under tests/data/. Do not update them
    // without regenerating every golden file.
    #[test]
    fn stream_is_frozen() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 5987356902031041503);
        assert_eq!(rng.next_u64(), 7051070477665621255);
        let mut rng7 = StdRng::seed_from_u64(7);
        assert_eq!(rng7.next_u64(), 1021219803524665661);
    }

    use super::RngCore;

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // All-zero snapshots are remapped, not accepted as a fixed point.
        assert_ne!(StdRng::from_state([0; 4]).next_u64(), 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(0..10);
            assert!(x < 10);
            let y: usize = rng.gen_range(3..=5);
            assert!((3..=5).contains(&y));
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn unit_f64_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
