//! Offline stand-in for `serde`.
//!
//! The real serde is unreachable in this build environment, so this crate
//! supplies the minimal surface the workspace relies on: a [`Serialize`]
//! trait that lowers values to an owned [`Value`] tree (consumed by the
//! vendored `serde_json` for report output) and a marker [`Deserialize`]
//! trait so the existing `#[derive(Serialize, Deserialize)]` attributes
//! keep compiling. Nothing in the workspace deserializes at runtime.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree produced by [`Serialize`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (serialized without a fraction).
    UInt(u64),
    /// Signed integer (serialized without a fraction).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Lowers a value to a [`Value`] tree.
pub trait Serialize {
    /// Produces the JSON-like representation of `self`.
    fn to_value(&self) -> Value;
}

/// Marker trait: the workspace derives this but never deserializes at
/// runtime, so no methods are required.
pub trait Deserialize {}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(
            vec![1u32, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }
}
