//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`/`prop_filter`,
//! integer- and float-range, tuple, [`Just`], [`prop_oneof!`] union, and
//! [`any`] strategies, `prop::collection::vec`, `option::of`, the
//! `proptest!` macro, and the `prop_assert*` family. Unlike the real
//! crate there is no shrinking and no persisted failure file — each case
//! is generated from a deterministic per-test RNG stream (seeded from the
//! test's module path), so failures reproduce exactly on re-run. Also
//! unlike the real crate, `any::<f64>()` only generates finite values.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// The RNG driving value generation.
pub type TestRng = StdRng;

/// Error raised by a failing property case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property does not hold; carries the assertion message.
    Fail(String),
    /// The input was rejected (unused by this workspace, kept for parity).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject(msg) => write!(f, "input rejected: {msg}"),
        }
    }
}

/// Per-run configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `f`, regenerating rejects (up to a
    /// bounded number of retries — the shim has no global reject budget).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.generate(rng);
            if (self.f)(&value) {
                return value;
            }
        }
        panic!("prop_filter exhausted 1000 retries: {}", self.reason);
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies — what [`prop_oneof!`] builds.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms (at least one).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// Uniformly picks one of several same-valued strategies per case.
/// Unlike the real crate, weighted arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Types with a canonical [`any`] strategy (a miniature of the real
/// crate's `Arbitrary`).
pub trait Arbitrary {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    /// Finite values only: a mix of unit-interval, wide-magnitude, and
    /// integral floats (NaN/infinity are not JSON and not generated).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.gen_range(0u8..4) {
            0 => rng.gen::<f64>(),
            1 => rng.gen_range(-1.0e15..1.0e15),
            2 => rng.gen_range(-1_000_000i64..1_000_000) as f64,
            _ => 0.0,
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias toward ASCII (printable and control) but cover the full
        // unicode scalar range, surrogates excluded by construction.
        match rng.gen_range(0u8..4) {
            0 => rng
                .gen_range(0x20u32..0x7F)
                .try_into()
                .expect("printable ascii"),
            1 => rng.gen_range(0u32..0x20).try_into().expect("ascii control"),
            2 => *['"', '\\', '/', '\u{e9}', '\u{65e5}', '\u{1F600}']
                .get(rng.gen_range(0usize..6))
                .expect("in range"),
            _ => loop {
                if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                    break c;
                }
            },
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.gen_range(0usize..16);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// `Option` strategies (mirrors `proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<S::Value>` — `Some` three times out of four.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `inner`'s values in `Option`, biased toward `Some`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_range(0u8..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Namespace mirroring `proptest::prop`.
pub mod prop {
    pub use super::option;

    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with a length drawn from `size` and elements
        /// drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates `Vec<S::Value>` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// FNV-1a hash of a test path, used to give each test its own RNG stream.
pub fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Builds the deterministic RNG for one generated case of one test.
pub fn new_case_rng(name_hash: u64, case: u32) -> TestRng {
    StdRng::seed_from_u64(name_hash ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let name_hash =
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::new_case_rng(name_hash, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body;
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err(err) => panic!(
                            "proptest `{}` failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        ),
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            concat!(
                "assertion failed: ",
                stringify!($left),
                " == ",
                stringify!($right)
            )
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            concat!(
                "assertion failed: ",
                stringify!($left),
                " != ",
                stringify!($right)
            )
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// One-glob import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Any, Arbitrary, Just, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let strat = (0u32..100, 0u32..100);
        let mut a = crate::new_case_rng(1, 0);
        let mut b = crate::new_case_rng(1, 0);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let strat = prop::collection::vec(0u32..10, 2..5);
        let mut rng = crate::new_case_rng(2, 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_wires_args_and_asserts(x in 1u32..50, y in 0usize..3) {
            if y == 0 {
                return Ok(());
            }
            prop_assert!(x >= 1, "x = {x}");
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_variant_compiles(pair in (0u32..4, 0u32..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 6);
        }
    }

    #[test]
    fn oneof_any_option_and_filter_compose() {
        let strat = prop::collection::vec(
            prop_oneof![
                (0u64..10).prop_map(|n| n.to_string()),
                any::<String>().prop_filter("short", |s| s.len() <= 24),
                Just("fixed".to_string()),
            ],
            1..8,
        );
        let mut rng = crate::new_case_rng(4, 0);
        for _ in 0..100 {
            let v: Vec<String> = strat.generate(&mut rng);
            assert!(!v.is_empty());
            assert!(v.iter().all(|s| s.len() <= 24));
        }
        let opt = crate::option::of(0u32..5);
        let mut somes = 0;
        for _ in 0..100 {
            if let Some(x) = opt.generate(&mut rng) {
                assert!(x < 5);
                somes += 1;
            }
        }
        assert!(somes > 50, "option::of should lean Some (got {somes}/100)");
        for _ in 0..100 {
            assert!(any::<f64>().generate(&mut rng).is_finite());
            let x = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&x));
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let strat = (2u32..10).prop_flat_map(|n| prop::collection::vec(0..n, 1..4));
        let mut rng = crate::new_case_rng(3, 1);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty());
        }
    }
}
