//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, integer-range and
//! tuple strategies, `prop::collection::vec`, the `proptest!` macro, and
//! the `prop_assert*` family. Unlike the real crate there is no shrinking
//! and no persisted failure file — each case is generated from a
//! deterministic per-test RNG stream (seeded from the test's module path),
//! so failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// The RNG driving value generation.
pub type TestRng = StdRng;

/// Error raised by a failing property case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property does not hold; carries the assertion message.
    Fail(String),
    /// The input was rejected (unused by this workspace, kept for parity).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject(msg) => write!(f, "input rejected: {msg}"),
        }
    }
}

/// Per-run configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with a length drawn from `size` and elements
        /// drawn from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates `Vec<S::Value>` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// FNV-1a hash of a test path, used to give each test its own RNG stream.
pub fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Builds the deterministic RNG for one generated case of one test.
pub fn new_case_rng(name_hash: u64, case: u32) -> TestRng {
    StdRng::seed_from_u64(name_hash ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let name_hash =
                    $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::new_case_rng(name_hash, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body;
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err(err) => panic!(
                            "proptest `{}` failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        ),
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            concat!(
                "assertion failed: ",
                stringify!($left),
                " == ",
                stringify!($right)
            )
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            concat!(
                "assertion failed: ",
                stringify!($left),
                " != ",
                stringify!($right)
            )
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// One-glob import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let strat = (0u32..100, 0u32..100);
        let mut a = crate::new_case_rng(1, 0);
        let mut b = crate::new_case_rng(1, 0);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let strat = prop::collection::vec(0u32..10, 2..5);
        let mut rng = crate::new_case_rng(2, 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_wires_args_and_asserts(x in 1u32..50, y in 0usize..3) {
            if y == 0 {
                return Ok(());
            }
            prop_assert!(x >= 1, "x = {x}");
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_variant_compiles(pair in (0u32..4, 0u32..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 6);
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let strat = (2u32..10).prop_flat_map(|n| prop::collection::vec(0..n, 1..4));
        let mut rng = crate::new_case_rng(3, 1);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty());
        }
    }
}
