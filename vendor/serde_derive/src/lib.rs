//! Offline stand-in for `serde_derive`.
//!
//! Expands `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` crate. Supports exactly the shapes this workspace
//! derives on: structs with named fields and enums whose variants are all
//! unit variants. Anything else is a compile error by construction (the
//! parser panics with a message naming the limitation), which is the
//! desired behavior for a deliberately minimal shim.
//!
//! No `syn`/`quote`: the input item is walked as raw [`TokenTree`]s and the
//! impl is emitted as a source string parsed back into a [`TokenStream`].

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    /// Struct name plus its named fields.
    Struct(String, Vec<String>),
    /// Enum name plus its unit variants.
    Enum(String, Vec<String>),
}

/// Extracts comma-separated top-level idents from a brace group, skipping
/// `#[...]` attributes and `pub` visibility. For struct bodies the ident
/// captured per item is the one immediately before the first `:` (the field
/// name); for enum bodies it is the sole ident (the variant name).
fn names_in_body(body: &proc_macro::Group, stop_at_colon: bool) -> Vec<String> {
    let mut names = Vec::new();
    let mut tokens = body.stream().into_iter().peekable();
    loop {
        // One field/variant per iteration.
        let mut name: Option<String> = None;
        let mut done = true;
        while let Some(tree) = tokens.next() {
            done = false;
            match tree {
                TokenTree::Punct(p) if p.as_char() == ',' => break,
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    // Skip the attribute's bracket group.
                    let _ = tokens.next();
                }
                TokenTree::Punct(p) if stop_at_colon && p.as_char() == ':' => {
                    // Everything until the comma is the field type.
                    for rest in tokens.by_ref() {
                        if matches!(&rest, TokenTree::Punct(q) if q.as_char() == ',') {
                            break;
                        }
                    }
                    break;
                }
                TokenTree::Ident(id) => {
                    let text = id.to_string();
                    if text == "pub" {
                        // A following parenthesized group is `pub(crate)` etc.
                        if matches!(
                            tokens.peek(),
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                        ) {
                            let _ = tokens.next();
                        }
                    } else if name.is_none() {
                        name = Some(text);
                    } else if !stop_at_colon {
                        panic!(
                            "serde_derive shim: enum variant `{}` is not a unit variant",
                            names.last().map(String::as_str).unwrap_or("?")
                        );
                    }
                }
                TokenTree::Group(_) if !stop_at_colon => {
                    panic!("serde_derive shim: only unit enum variants are supported");
                }
                _ => {}
            }
        }
        if let Some(n) = name {
            names.push(n);
        }
        if done {
            break;
        }
    }
    names
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    while let Some(tree) = tokens.next() {
        match tree {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                let kind = id.to_string();
                let name = match tokens.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde_derive shim: expected item name, got {other:?}"),
                };
                if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    panic!("serde_derive shim: generic items are not supported");
                }
                let body = loop {
                    match tokens.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
                        Some(_) => continue,
                        None => panic!(
                            "serde_derive shim: `{name}` has no braced body (tuple structs unsupported)"
                        ),
                    }
                };
                return if kind == "struct" {
                    Item::Struct(name, names_in_body(&body, true))
                } else {
                    Item::Enum(name, names_in_body(&body, false))
                };
            }
            _ => {}
        }
    }
    panic!("serde_derive shim: input is not a struct or enum");
}

/// Derives the vendored `serde::Serialize` (lowering to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct(name, fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::String(\"{v}\".to_string())"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(", ")
            )
        }
    };
    body.parse()
        .expect("serde_derive shim: generated impl must parse")
}

/// Derives the vendored `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_item(input) {
        Item::Struct(name, _) | Item::Enum(name, _) => name,
    };
    format!("impl serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive shim: generated impl must parse")
}
