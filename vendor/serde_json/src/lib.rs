//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Value`](serde::Value) tree as pretty-printed JSON, and parses JSON
//! text back into a [`Value`] tree (used by the `tlp-obs` trace decoder
//! and report folder; typed `Deserialize` is still not provided).

#![forbid(unsafe_code)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The current encoder is total (every `Value`
/// renders), so this is never constructed, but the public API mirrors the
/// real crate's fallible signature so call sites keep their `?`/`map_err`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // Pretty output is valid JSON; compact callers only need validity, but
    // render without indentation anyway for parity with the real crate.
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

fn write_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let text = format!("{x}");
        out.push_str(&text);
        // `1.0` formats as "1"; force a fraction so the value parses back
        // as a Float, matching the real crate — NaN/inf are not JSON.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Match serde_json's lossy behavior of refusing non-finite floats,
        // minus the error plumbing: emit null, which keeps reports readable.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, value: &Value, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                write_indent(out, depth + 1);
                write_value(out, item, depth + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            write_indent(out, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                write_indent(out, depth + 1);
                write_escaped(out, key);
                out.push_str(": ");
                write_value(out, item, depth + 1);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            write_indent(out, depth);
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
        other => write_value(out, other, 0),
    }
}

/// Error from [`from_str`]: what went wrong and the byte offset.
#[derive(Debug)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document into a [`Value`] tree.
///
/// Accepts exactly what the encoder in this crate emits (plus standard
/// JSON: unicode escapes, exponents, arbitrary whitespace). Trailing
/// whitespace is allowed; any other trailing content is an error.
///
/// # Errors
///
/// [`ParseError`] describing the first offending byte.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected {literal}")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Value::Null),
            Some(b't') => self.eat_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our encoder;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8: &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| self.error("eof"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.error("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.error("expected digits"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<i64>() {
                    return Ok(Value::Int(-n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let value = Value::Object(vec![
            ("name".into(), Value::String("G1".into())),
            (
                "rf".into(),
                Value::Array(vec![Value::Float(1.5), Value::UInt(2)]),
            ),
        ]);
        let json = to_string_pretty(&WrappedValue(value)).unwrap();
        assert_eq!(
            json,
            "{\n  \"name\": \"G1\",\n  \"rf\": [\n    1.5,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn compact_roundtrips_shapes() {
        let value = Value::Array(vec![Value::Bool(true), Value::Null, Value::Int(-2)]);
        assert_eq!(to_string(&WrappedValue(value)).unwrap(), "[true,null,-2]");
    }

    #[test]
    fn escapes_control_characters() {
        let json = to_string(&"a\"b\\c\nd\u{1}").unwrap();
        assert_eq!(json, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parses_scalars() {
        assert!(matches!(from_str("null").unwrap(), Value::Null));
        assert!(matches!(from_str(" true ").unwrap(), Value::Bool(true)));
        assert!(matches!(from_str("false").unwrap(), Value::Bool(false)));
        assert!(matches!(from_str("42").unwrap(), Value::UInt(42)));
        assert!(matches!(from_str("-7").unwrap(), Value::Int(-7)));
        assert!(matches!(from_str("1.5").unwrap(), Value::Float(x) if x == 1.5));
        assert!(matches!(from_str("2e3").unwrap(), Value::Float(x) if x == 2000.0));
        assert!(matches!(from_str("\"hi\"").unwrap(), Value::String(s) if s == "hi"));
    }

    #[test]
    fn parses_nested_structures_preserving_key_order() {
        let parsed = from_str("{\"b\": [1, {\"a\": null}], \"a\": -2}").unwrap();
        let Value::Object(entries) = parsed else {
            panic!("expected object");
        };
        assert_eq!(entries[0].0, "b");
        assert_eq!(entries[1].0, "a");
        assert!(matches!(entries[1].1, Value::Int(-2)));
        let Value::Array(items) = &entries[0].1 else {
            panic!("expected array");
        };
        assert!(matches!(items[0], Value::UInt(1)));
    }

    #[test]
    fn parses_string_escapes() {
        let parsed = from_str("\"a\\\"b\\\\c\\nd\\u0001é\"").unwrap();
        assert!(matches!(parsed, Value::String(s) if s == "a\"b\\c\nd\u{1}é"));
    }

    #[test]
    fn encode_then_parse_roundtrips_both_renderings() {
        let value = Value::Object(vec![
            ("name".into(), Value::String("G\"1\n".into())),
            (
                "rf".into(),
                Value::Array(vec![Value::Float(1.5), Value::UInt(2), Value::Int(-3)]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&WrappedValue(value.clone())).unwrap();
        let pretty = to_string_pretty(&WrappedValue(value.clone())).unwrap();
        assert_eq!(from_str(&compact).unwrap(), value);
        assert_eq!(from_str(&pretty).unwrap(), value);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"unterminated",
            "nul",
            "{\"a\":}",
            "-",
            "01x",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    struct WrappedValue(Value);

    impl Serialize for WrappedValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
