//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Value`](serde::Value) tree as pretty-printed JSON. Only serialization
//! is provided — nothing in this workspace parses JSON at runtime.

#![forbid(unsafe_code)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The current encoder is total (every `Value`
/// renders), so this is never constructed, but the public API mirrors the
/// real crate's fallible signature so call sites keep their `?`/`map_err`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // Pretty output is valid JSON; compact callers only need validity, but
    // render without indentation anyway for parity with the real crate.
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

fn write_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let text = format!("{x}");
        out.push_str(&text);
        // `1.0` formats as "1"; keep it a JSON number either way (it is),
        // so no fixup needed — but NaN/inf are not JSON.
    } else {
        // Match serde_json's lossy behavior of refusing non-finite floats,
        // minus the error plumbing: emit null, which keeps reports readable.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, value: &Value, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                write_indent(out, depth + 1);
                write_value(out, item, depth + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            write_indent(out, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                write_indent(out, depth + 1);
                write_escaped(out, key);
                out.push_str(": ");
                write_value(out, item, depth + 1);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            write_indent(out, depth);
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
        other => write_value(out, other, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let value = Value::Object(vec![
            ("name".into(), Value::String("G1".into())),
            (
                "rf".into(),
                Value::Array(vec![Value::Float(1.5), Value::UInt(2)]),
            ),
        ]);
        let json = to_string_pretty(&WrappedValue(value)).unwrap();
        assert_eq!(
            json,
            "{\n  \"name\": \"G1\",\n  \"rf\": [\n    1.5,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn compact_roundtrips_shapes() {
        let value = Value::Array(vec![Value::Bool(true), Value::Null, Value::Int(-2)]);
        assert_eq!(to_string(&WrappedValue(value)).unwrap(), "[true,null,-2]");
    }

    #[test]
    fn escapes_control_characters() {
        let json = to_string(&"a\"b\\c\nd\u{1}").unwrap();
        assert_eq!(json, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    struct WrappedValue(Value);

    impl Serialize for WrappedValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
