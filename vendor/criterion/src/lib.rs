//! Offline stand-in for `criterion`.
//!
//! Provides the group/`bench_function`/`bench_with_input` API subset the
//! bench crate uses, measuring simple wall-clock medians over a handful of
//! iterations instead of criterion's statistical machinery. Good enough to
//! spot order-of-magnitude regressions and to keep `cargo bench` (and
//! `cargo test --benches`) compiling and running offline.
//!
//! Bench binaries are executed by `cargo test` with `--test` style args
//! (e.g. `--format`), so unknown CLI arguments are ignored and the
//! `--test` flag short-circuits to a no-op run of each benchmark body.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a value.
///
/// Implemented with a volatile-free trick (`std::hint::black_box` exists
/// since 1.66 — use it directly).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher<'a> {
    samples: u64,
    /// When set, run the body once and skip timing (test mode).
    smoke_only: bool,
    elapsed: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine`, recording one duration sample per invocation batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_only {
            black_box(routine());
            return;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.elapsed.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Sets a target measurement time. Accepted for API parity; the shim
    /// always runs exactly `sample_size` iterations.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: self.sample_size,
            smoke_only: self.criterion.smoke_only,
            elapsed: &mut samples,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (reporting happens per-benchmark; this is a
    /// no-op kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("bench {}/{id}: ok (smoke)", self.name);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!(" ({:.3} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!(
                    " ({:.3} MiB/s)",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{id}: median {median:?} over {} samples{rate}",
            self.name,
            sorted.len()
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench binaries with `--test`-style flags; run
        // each body once without timing there so benches double as smoke
        // tests. `cargo bench` passes `--bench`.
        let smoke_only = std::env::args().any(|a| a == "--test");
        Criterion { smoke_only }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("default").bench_function(id, f);
        self
    }
}

/// Declares the benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking the given group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_end_to_end() {
        let mut criterion = Criterion { smoke_only: false };
        smoke(&mut criterion);
        let mut smoky = Criterion { smoke_only: true };
        smoke(&mut smoky);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("algo", 10).to_string(), "algo/10");
        assert_eq!(BenchmarkId::from_parameter("tlp").to_string(), "tlp");
    }
}
